// Semispace copying collection (Cheney's algorithm) over the registry.
// Live cells are evacuated breadth-first into fresh to-space cells from
// the same backend; a forwarding table maps old refs to clones, to-space
// addresses are assigned through heap::AddressModel's bump counter (the
// §5.2.5 address discipline), and the scan pass rewrites every copied
// pointer word through the table. From-space — the entire old registry,
// survivors' husks and garbage alike — is then freed, so reclamation cost
// is proportional to the live set plus a free per old cell, and the
// survivors end up compact in both registry order and simulated address
// space.
//
// Moving invalidates old CellRefs: the mutator must re-read its roots
// from the root slots after every collection.
#include <unordered_map>

#include "gc/collector.hpp"
#include "heap/address_model.hpp"

namespace small::gc {
namespace {

class SemispaceCollector final : public Collector {
 public:
  using Collector::Collector;

  const char* name() const override { return "semispace"; }

 protected:
  std::uint64_t doCollect() override {
    std::unordered_map<CellRef, CellRef> forward;
    std::vector<CellRef> copies;  // to-space registry; doubles as scan queue

    // Evacuate: copy on first contact, answer from the forwarding table
    // after (one metadata touch per contact, one more per new entry).
    const auto evacuate = [&](CellRef old) {
      ++stats_.tableTouches;
      const auto it = forward.find(old);
      if (it != forward.end()) return it->second;
      const CellRef clone = heap_.allocate(heap_.car(old), heap_.cdr(old));
      toSpace_.allocateObject(1);
      ++stats_.tableTouches;
      forward.emplace(old, clone);
      copies.push_back(clone);
      ++stats_.cellsTraced;
      return clone;
    };

    for (CellRef& root : roots_) {
      if (root != kNull) root = evacuate(root);
    }

    // Scan: clones still hold from-space pointer words; rewrite each
    // through the forwarding table, evacuating targets on first contact
    // (which grows the queue — the Cheney wavefront).
    for (std::size_t scan = 0; scan < copies.size(); ++scan) {
      const CellRef clone = copies[scan];
      const heap::HeapWord carWord = heap_.car(clone);
      if (carWord.isPointer()) {
        heap_.setCar(clone, heap::HeapWord::pointer(evacuate(carWord.payload)));
      }
      const heap::HeapWord cdrWord = heap_.cdr(clone);
      if (cdrWord.isPointer()) {
        heap_.setCdr(clone, heap::HeapWord::pointer(evacuate(cdrWord.payload)));
      }
    }

    // Discard from-space wholesale; only the copies survive.
    const std::uint64_t oldCount = cells_.size();
    for (const CellRef cell : cells_) heap_.free(cell);
    cells_ = std::move(copies);
    return oldCount - cells_.size();
  }

 private:
  /// Simulated to-space address assignment (monotonic across flips).
  heap::AddressModel toSpace_;
};

}  // namespace

std::unique_ptr<Collector> makeSemispaceCollector(
    heap::HeapBackend& heap, const Collector::Options& options) {
  return std::make_unique<SemispaceCollector>(heap, options);
}

}  // namespace small::gc
