// S-expression printer: the inverse of the reader.
#pragma once

#include <string>

#include "sexpr/arena.hpp"

namespace small::sexpr {

/// Render `ref` in standard list notation: `(a b (c d) . e)` etc.
/// `maxNodes` bounds output for cyclic structures; once exceeded the
/// remainder prints as `...`.
std::string print(const Arena& arena, const SymbolTable& symbols, NodeRef ref,
                  std::size_t maxNodes = 1u << 20);

}  // namespace small::sexpr
