#include "sexpr/metrics.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"

namespace small::sexpr {

namespace {

struct Frame {
  NodeRef ref;
  std::size_t depth;
};

}  // namespace

ListShape measureShape(const Arena& arena, NodeRef ref,
                       std::size_t nodeLimit) {
  ListShape shape{};
  if (arena.isAtom(ref)) {
    if (!arena.isNil(ref)) shape.n = 0;  // an atom alone is not a list
    return shape;
  }

  // Iterative traversal over the list spine; each cons cell met along a
  // spine contributes one cell, each non-nil atom one symbol, each sublist
  // one internal parenthesis pair plus its own spine.
  std::vector<Frame> stack;
  stack.push_back({ref, 1});
  std::size_t visited = 0;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    NodeRef cursor = frame.ref;
    while (!arena.isNil(cursor)) {
      if (++visited > nodeLimit) {
        throw support::EvalError("measureShape: node limit exceeded");
      }
      if (arena.isAtom(cursor)) {
        // Dotted tail: counts as an atom occupant of the last cell.
        ++shape.n;
        break;
      }
      ++shape.cells;
      shape.depth = std::max(shape.depth, frame.depth);
      const NodeRef head = arena.car(cursor);
      if (arena.isNil(head)) {
        // nil in car position is an atom occurrence (prints as `nil`).
        ++shape.n;
      } else if (arena.isAtom(head)) {
        ++shape.n;
      } else {
        ++shape.p;
        stack.push_back({head, frame.depth + 1});
      }
      cursor = arena.cdr(cursor);
    }
  }
  return shape;
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hashInto(const Arena& arena, NodeRef ref, std::size_t& budget) {
  if (budget == 0) {
    throw support::EvalError("structuralHash: node limit exceeded");
  }
  --budget;
  switch (arena.kind(ref)) {
    case NodeKind::kNil:
      return 0x2545f4914f6cdd1dull;
    case NodeKind::kSymbol:
      return mix(0x9ddfea08eb382d69ull, arena.symbolId(ref));
    case NodeKind::kInteger:
      return mix(0xc2b2ae3d27d4eb4full,
                 static_cast<std::uint64_t>(arena.integerValue(ref)));
    case NodeKind::kCons: {
      std::uint64_t h = 0x165667b19e3779f9ull;
      // Iterate the spine to keep stack depth proportional to nesting, not
      // list length.
      NodeRef cursor = ref;
      while (arena.kind(cursor) == NodeKind::kCons) {
        h = mix(h, hashInto(arena, arena.car(cursor), budget));
        cursor = arena.cdr(cursor);
        if (budget == 0) {
          throw support::EvalError("structuralHash: node limit exceeded");
        }
        --budget;
      }
      h = mix(h, hashInto(arena, cursor, budget));
      return h;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t structuralHash(const Arena& arena, NodeRef ref,
                             std::size_t nodeLimit) {
  std::size_t budget = nodeLimit;
  const std::uint64_t h = hashInto(arena, ref, budget);
  return h == 0 ? 1 : h;
}

}  // namespace small::sexpr
