// Textual s-expression reader.
//
// Accepts the classic surface syntax: symbols, (possibly signed) integers,
// proper lists `(a b c)`, dotted pairs `(a . b)`, the quote shorthand `'x`,
// and `;` line comments. Square brackets act as "super-parens" closing all
// open lists, as in Franz Lisp / Interlisp source (the thesis examples use
// them, e.g. Fig 4.15).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::sexpr {

class Reader {
 public:
  Reader(Arena& arena, SymbolTable& symbols)
      : arena_(arena), symbols_(symbols) {}

  /// Parse exactly one s-expression from `text`; trailing whitespace and
  /// comments are permitted, anything else throws ParseError.
  NodeRef readOne(std::string_view text);

  /// Parse every s-expression in `text` (possibly none).
  std::vector<NodeRef> readAll(std::string_view text);

 private:
  struct Cursor {
    std::string_view text;
    std::size_t pos = 0;
    int openDepth = 0;        ///< number of lists currently open
    int superCloseDepth = 0;  ///< pending list closes from a `]`
  };

  std::optional<NodeRef> readExpr(Cursor& cursor);
  NodeRef readList(Cursor& cursor);
  NodeRef readAtomToken(std::string_view token);
  static void skipBlanks(Cursor& cursor);
  [[noreturn]] static void fail(const Cursor& cursor, std::string_view what);

  Arena& arena_;
  SymbolTable& symbols_;
};

}  // namespace small::sexpr
