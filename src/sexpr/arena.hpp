// The s-expression substrate: interned symbols and an arena of tagged nodes
// addressed by 32-bit handles.
//
// Every layer above (the interpreter, the trace machinery, the heap
// representations) talks about list structure through `NodeRef` handles into
// one `Arena`. Handles rather than pointers keep nodes at 12 bytes, make
// traces serializable, and let the simulators reason about object identity
// the same way the paper's LPT does.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace small::sexpr {

/// Interned symbol identifier. Symbol 0 is always "nil".
using SymbolId = std::uint32_t;

/// Handle to a node in an `Arena`. `kNilRef` designates the nil atom.
using NodeRef = std::uint32_t;
inline constexpr NodeRef kNilRef = 0;

enum class NodeKind : std::uint8_t {
  kNil,     ///< the empty list / false
  kSymbol,  ///< an interned name
  kInteger, ///< a fixnum
  kCons,    ///< a pair of NodeRefs
};

/// Symbol interning table shared by a whole Lisp system.
class SymbolTable {
 public:
  SymbolTable();

  SymbolId intern(std::string_view name);
  const std::string& name(SymbolId id) const;
  bool contains(std::string_view name) const;
  std::size_t size() const { return names_.size(); }

  /// The id "nil" interned to at construction (always 0).
  static constexpr SymbolId kNil = 0;
  /// The id "t" interned to at construction (always 1).
  static constexpr SymbolId kT = 1;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
};

/// Arena of s-expression nodes. Node 0 is the distinguished nil node.
///
/// The arena is append-only from the caller's point of view; the Lisp
/// interpreter's heap management story lives in the SMALL simulator, not
/// here (Chapter 3's studies are representation-independent and need stable
/// node identity across a whole run).
class Arena {
 public:
  Arena();

  NodeRef nil() const { return kNilRef; }
  NodeRef symbol(SymbolId id);
  NodeRef integer(std::int64_t value);
  NodeRef cons(NodeRef car, NodeRef cdr);

  NodeKind kind(NodeRef ref) const;
  bool isAtom(NodeRef ref) const { return kind(ref) != NodeKind::kCons; }
  bool isNil(NodeRef ref) const { return kind(ref) == NodeKind::kNil; }

  SymbolId symbolId(NodeRef ref) const;
  std::int64_t integerValue(NodeRef ref) const;
  NodeRef car(NodeRef ref) const;
  NodeRef cdr(NodeRef ref) const;

  /// Destructive update, as performed by rplaca/rplacd.
  void setCar(NodeRef ref, NodeRef value);
  void setCdr(NodeRef ref, NodeRef value);

  std::size_t nodeCount() const { return nodes_.size(); }

  /// Build a proper list from the given elements (left to right).
  NodeRef list(std::initializer_list<NodeRef> elements);

  /// Structural equality (Lisp `equal`): atoms compare by kind and payload,
  /// conses recursively. Handles shared structure; cyclic structures are
  /// bounded by a depth guard.
  bool equal(NodeRef a, NodeRef b, int depthLimit = 10000) const;

  /// Number of elements in a proper list spine; throws on dotted lists.
  std::size_t listLength(NodeRef ref) const;

 private:
  struct Node {
    NodeKind kind;
    union {
      struct {
        NodeRef car;
        NodeRef cdr;
      } pair;
      SymbolId symbol;
      std::int64_t integer;
    };
  };

  const Node& at(NodeRef ref) const;
  Node& at(NodeRef ref);

  std::vector<Node> nodes_;
  // Small-integer and symbol-node caches keep repeated atoms from bloating
  // the arena during long interpreter runs.
  std::unordered_map<SymbolId, NodeRef> symbolNodes_;
  std::unordered_map<std::int64_t, NodeRef> smallInts_;
};

}  // namespace small::sexpr
