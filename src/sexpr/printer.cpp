#include "sexpr/printer.hpp"

#include <sstream>

namespace small::sexpr {

namespace {

void printInto(const Arena& arena, const SymbolTable& symbols, NodeRef ref,
               std::ostringstream& out, std::size_t& budget) {
  if (budget == 0) {
    out << "...";
    return;
  }
  --budget;
  switch (arena.kind(ref)) {
    case NodeKind::kNil:
      out << "nil";
      return;
    case NodeKind::kSymbol:
      out << symbols.name(arena.symbolId(ref));
      return;
    case NodeKind::kInteger:
      out << arena.integerValue(ref);
      return;
    case NodeKind::kCons: {
      out << "(";
      NodeRef cursor = ref;
      bool first = true;
      while (true) {
        if (!first) out << " ";
        first = false;
        printInto(arena, symbols, arena.car(cursor), out, budget);
        const NodeRef next = arena.cdr(cursor);
        if (arena.isNil(next)) break;
        if (arena.kind(next) != NodeKind::kCons) {
          out << " . ";
          printInto(arena, symbols, next, out, budget);
          break;
        }
        if (budget == 0) {
          out << " ...";
          break;
        }
        --budget;
        cursor = next;
      }
      out << ")";
      return;
    }
  }
}

}  // namespace

std::string print(const Arena& arena, const SymbolTable& symbols, NodeRef ref,
                  std::size_t maxNodes) {
  std::ostringstream out;
  std::size_t budget = maxNodes;
  printInto(arena, symbols, ref, out, budget);
  return out.str();
}

}  // namespace small::sexpr
