// List-shape metrics from Chapter 3.
//
// The thesis characterizes a list by two numbers (§3.3.1, Fig 3.2):
//   n — the number of symbols (atoms) in the list, and
//   p — the number of *internal* parenthesis pairs (sublists).
// A list with n symbols and p internal pairs occupies n + p two-pointer (or
// cdr-coded) list cells, versus n cells under a structure-coded
// representation; the thesis also uses n+p to derive tree-node counts for
// the §5.3.1 ordered-traversal analysis (n + p internal nodes, n + p + 1
// leaves).
#pragma once

#include <cstddef>

#include "sexpr/arena.hpp"

namespace small::sexpr {

struct ListShape {
  std::size_t n = 0;      ///< atoms (symbols + integers) contained
  std::size_t p = 0;      ///< internal parenthesis pairs (proper sublists)
  std::size_t cells = 0;  ///< two-pointer list cells needed (== n + p for
                          ///< proper lists, counted directly for generality)
  std::size_t depth = 0;  ///< maximum nesting depth (a flat list has 1)
};

/// Measure the shape of the s-expression `ref`. Atoms yield all-zero shapes
/// with depth 0. Shared substructure is counted each time it is reachable
/// (the thesis counts parentheses in the printed form).
ListShape measureShape(const Arena& arena, NodeRef ref,
                       std::size_t nodeLimit = 1u << 22);

/// Structural fingerprint: two s-expressions that print identically hash
/// identically. This reproduces the ambiguity of the thesis' textual
/// traces, where "two list arguments that look identical ... would be
/// mistaken for each other" (§5.2.1). Never returns 0 (0 is the trace
/// modules' atom placeholder).
std::uint64_t structuralHash(const Arena& arena, NodeRef ref,
                             std::size_t nodeLimit = 1u << 22);

}  // namespace small::sexpr
