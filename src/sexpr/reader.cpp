#include "sexpr/reader.hpp"

#include <cctype>
#include <charconv>
#include <string>

namespace small::sexpr {

using support::ParseError;

namespace {

bool isDelimiter(char c) {
  return std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
         c == '[' || c == ']' || c == '\'' || c == ';';
}

}  // namespace

void Reader::skipBlanks(Cursor& cursor) {
  while (cursor.pos < cursor.text.size()) {
    const char c = cursor.text[cursor.pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++cursor.pos;
    } else if (c == ';') {
      while (cursor.pos < cursor.text.size() &&
             cursor.text[cursor.pos] != '\n') {
        ++cursor.pos;
      }
    } else {
      break;
    }
  }
}

void Reader::fail(const Cursor& cursor, std::string_view what) {
  throw ParseError("reader: " + std::string(what) + " at offset " +
                   std::to_string(cursor.pos));
}

NodeRef Reader::readOne(std::string_view text) {
  Cursor cursor{text};
  const std::optional<NodeRef> expr = readExpr(cursor);
  if (!expr) fail(cursor, "expected an s-expression");
  skipBlanks(cursor);
  if (cursor.pos != cursor.text.size()) {
    fail(cursor, "trailing input after s-expression");
  }
  return *expr;
}

std::vector<NodeRef> Reader::readAll(std::string_view text) {
  Cursor cursor{text};
  std::vector<NodeRef> result;
  while (true) {
    const std::optional<NodeRef> expr = readExpr(cursor);
    if (!expr) break;
    result.push_back(*expr);
  }
  skipBlanks(cursor);
  if (cursor.pos != cursor.text.size()) {
    fail(cursor, "unparsable input");
  }
  return result;
}

std::optional<NodeRef> Reader::readExpr(Cursor& cursor) {
  skipBlanks(cursor);
  if (cursor.pos >= cursor.text.size()) return std::nullopt;
  const char c = cursor.text[cursor.pos];
  if (c == '(' || c == '[') {
    ++cursor.pos;
    return readList(cursor);
  }
  if (c == ')' || c == ']') return std::nullopt;  // handled by readList
  if (c == '\'') {
    ++cursor.pos;
    const std::optional<NodeRef> quoted = readExpr(cursor);
    if (!quoted) fail(cursor, "expected expression after quote");
    const NodeRef quoteSym = arena_.symbol(symbols_.intern("quote"));
    return arena_.list({quoteSym, *quoted});
  }
  // Atom token.
  const std::size_t start = cursor.pos;
  while (cursor.pos < cursor.text.size() &&
         !isDelimiter(cursor.text[cursor.pos])) {
    ++cursor.pos;
  }
  if (cursor.pos == start) fail(cursor, "unexpected character");
  return readAtomToken(cursor.text.substr(start, cursor.pos - start));
}

NodeRef Reader::readList(Cursor& cursor) {
  ++cursor.openDepth;
  std::vector<NodeRef> elements;
  NodeRef tail = kNilRef;
  while (true) {
    if (cursor.superCloseDepth > 0) {
      // A `]` below us is still unwinding enclosing lists; consume one
      // close for this level.
      --cursor.superCloseDepth;
      break;
    }
    skipBlanks(cursor);
    if (cursor.pos >= cursor.text.size()) fail(cursor, "unterminated list");
    const char c = cursor.text[cursor.pos];
    if (c == ')') {
      ++cursor.pos;
      break;
    }
    if (c == ']') {
      // Super-paren: closes this list and every enclosing open list.
      ++cursor.pos;
      cursor.superCloseDepth = cursor.openDepth - 1;
      break;
    }
    if (c == '.') {
      // Possible dotted pair: `.` must be its own token.
      const std::size_t next = cursor.pos + 1;
      if (next >= cursor.text.size() ||
          isDelimiter(cursor.text[next])) {
        ++cursor.pos;
        const std::optional<NodeRef> dotted = readExpr(cursor);
        if (!dotted) fail(cursor, "expected expression after dot");
        tail = *dotted;
        skipBlanks(cursor);
        if (cursor.pos >= cursor.text.size() ||
            (cursor.text[cursor.pos] != ')' &&
             cursor.text[cursor.pos] != ']')) {
          fail(cursor, "expected ) after dotted tail");
        }
        continue;  // loop once more to consume the closer
      }
      // Fall through: token beginning with '.' treated as a symbol/number.
    }
    const std::optional<NodeRef> element = readExpr(cursor);
    if (!element) fail(cursor, "expected list element");
    elements.push_back(*element);
  }
  --cursor.openDepth;
  NodeRef result = tail;
  for (std::size_t i = elements.size(); i-- > 0;) {
    result = arena_.cons(elements[i], result);
  }
  return result;
}

NodeRef Reader::readAtomToken(std::string_view token) {
  // Integer?
  std::int64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc() && ptr == last) {
    return arena_.integer(value);
  }
  // "nil" and "t" intern to the reserved ids.
  return arena_.symbol(symbols_.intern(token));
}

}  // namespace small::sexpr
