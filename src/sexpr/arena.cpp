#include "sexpr/arena.hpp"

namespace small::sexpr {

using support::Error;
using support::EvalError;

SymbolTable::SymbolTable() {
  intern("nil");  // SymbolId 0
  intern("t");    // SymbolId 1
}

SymbolId SymbolTable::intern(std::string_view name) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

const std::string& SymbolTable::name(SymbolId id) const {
  if (id >= names_.size()) throw Error("SymbolTable: bad symbol id");
  return names_[id];
}

bool SymbolTable::contains(std::string_view name) const {
  return index_.contains(std::string(name));
}

Arena::Arena() {
  Node nil{};
  nil.kind = NodeKind::kNil;
  nodes_.push_back(nil);
}

NodeRef Arena::symbol(SymbolId id) {
  if (id == SymbolTable::kNil) return kNilRef;
  const auto it = symbolNodes_.find(id);
  if (it != symbolNodes_.end()) return it->second;
  Node node{};
  node.kind = NodeKind::kSymbol;
  node.symbol = id;
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(node);
  symbolNodes_.emplace(id, ref);
  return ref;
}

NodeRef Arena::integer(std::int64_t value) {
  constexpr std::int64_t kCacheLo = -128, kCacheHi = 1024;
  const bool cacheable = value >= kCacheLo && value <= kCacheHi;
  if (cacheable) {
    const auto it = smallInts_.find(value);
    if (it != smallInts_.end()) return it->second;
  }
  Node node{};
  node.kind = NodeKind::kInteger;
  node.integer = value;
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(node);
  if (cacheable) smallInts_.emplace(value, ref);
  return ref;
}

NodeRef Arena::cons(NodeRef carRef, NodeRef cdrRef) {
  at(carRef);  // validate handles before allocating
  at(cdrRef);
  Node node{};
  node.kind = NodeKind::kCons;
  node.pair = {carRef, cdrRef};
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(node);
  return ref;
}

NodeKind Arena::kind(NodeRef ref) const { return at(ref).kind; }

SymbolId Arena::symbolId(NodeRef ref) const {
  const Node& node = at(ref);
  if (node.kind == NodeKind::kNil) return SymbolTable::kNil;
  if (node.kind != NodeKind::kSymbol) {
    throw EvalError("symbolId of non-symbol node");
  }
  return node.symbol;
}

std::int64_t Arena::integerValue(NodeRef ref) const {
  const Node& node = at(ref);
  if (node.kind != NodeKind::kInteger) {
    throw EvalError("integerValue of non-integer node");
  }
  return node.integer;
}

NodeRef Arena::car(NodeRef ref) const {
  const Node& node = at(ref);
  if (node.kind == NodeKind::kNil) return kNilRef;  // (car nil) == nil
  if (node.kind != NodeKind::kCons) throw EvalError("car of an atom");
  return node.pair.car;
}

NodeRef Arena::cdr(NodeRef ref) const {
  const Node& node = at(ref);
  if (node.kind == NodeKind::kNil) return kNilRef;  // (cdr nil) == nil
  if (node.kind != NodeKind::kCons) throw EvalError("cdr of an atom");
  return node.pair.cdr;
}

void Arena::setCar(NodeRef ref, NodeRef value) {
  at(value);
  Node& node = at(ref);
  if (node.kind != NodeKind::kCons) throw EvalError("rplaca of an atom");
  node.pair.car = value;
}

void Arena::setCdr(NodeRef ref, NodeRef value) {
  at(value);
  Node& node = at(ref);
  if (node.kind != NodeKind::kCons) throw EvalError("rplacd of an atom");
  node.pair.cdr = value;
}

NodeRef Arena::list(std::initializer_list<NodeRef> elements) {
  NodeRef result = kNilRef;
  const NodeRef* data = elements.begin();
  for (std::size_t i = elements.size(); i-- > 0;) {
    result = cons(data[i], result);
  }
  return result;
}

bool Arena::equal(NodeRef a, NodeRef b, int depthLimit) const {
  if (depthLimit <= 0) throw EvalError("equal: structure too deep");
  if (a == b) return true;
  const Node& na = at(a);
  const Node& nb = at(b);
  if (na.kind != nb.kind) return false;
  switch (na.kind) {
    case NodeKind::kNil:
      return true;
    case NodeKind::kSymbol:
      return na.symbol == nb.symbol;
    case NodeKind::kInteger:
      return na.integer == nb.integer;
    case NodeKind::kCons:
      return equal(na.pair.car, nb.pair.car, depthLimit - 1) &&
             equal(na.pair.cdr, nb.pair.cdr, depthLimit - 1);
  }
  return false;
}

std::size_t Arena::listLength(NodeRef ref) const {
  std::size_t n = 0;
  while (!isNil(ref)) {
    if (kind(ref) != NodeKind::kCons) {
      throw EvalError("listLength of dotted list");
    }
    ++n;
    ref = cdr(ref);
  }
  return n;
}

const Arena::Node& Arena::at(NodeRef ref) const {
  if (ref >= nodes_.size()) throw Error("Arena: bad node handle");
  return nodes_[ref];
}

Arena::Node& Arena::at(NodeRef ref) {
  if (ref >= nodes_.size()) throw Error("Arena: bad node handle");
  return nodes_[ref];
}

}  // namespace small::sexpr
