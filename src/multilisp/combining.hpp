// Cross-shard reference weighting with combining update queues (Ch. 6).
//
// The single-node model (ref_weight.hpp) counts messages; this is the
// executable version the service mode runs: objects live in per-shard
// weight tables (one per ShardedLpt shard, guarded by that shard's lock),
// references carry weight across shards freely, and weight *decrements* —
// the only operation that must reach a remote shard — pass through a
// session-local CombiningUpdateQueue that merges decrements addressed to
// the same object and batches everything bound for one shard into a
// single message (one lock acquisition), the paper's combining-queue
// discipline.
//
// Protocol invariants the service relies on:
//   * copy never locks: a weight >= 2 reference splits locally
//     (splitRef); a weight-1 reference interposes an indirection object
//     in the *holder's home* table (one home-shard lock, no remote
//     traffic) — the Fig 6.5 escape.
//   * destroy never locks: it enqueues the carried weight; the queue
//     locks each target shard once per flush.
//   * an object's id is recycled only after its outstanding weight hits
//     zero, and every unit of weight is consumed exactly once — so a
//     pending queue entry can never outlive (or alias) its target.
//   * base objects pin exactly one LPT entry in their home shard;
//     indirection objects pin none. When a base object dies its entry id
//     is handed back through applyDecrement's freedEntries so the caller
//     can decRef it under the very shard lock it already holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "small/lpt.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace small::multilisp {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kNoShardObject = 0xffffffffu;

/// A reference that may cross shards: where the object lives, which
/// object, and how much weight this reference carries.
struct ShardRef {
  std::uint32_t shard = 0;
  ObjectId object = kNoShardObject;
  std::uint32_t weight = 0;
};

/// Local weight split — the whole point of the scheme: copying a
/// reference with weight >= 2 touches no shard and sends no message.
inline ShardRef splitRef(ShardRef& ref) {
  if (ref.weight < 2) {
    throw support::SimulationError(
        "combining: splitRef needs weight >= 2 (use an indirection)");
  }
  const std::uint32_t half = ref.weight / 2;
  ShardRef clone = ref;
  clone.weight = half;
  ref.weight -= half;
  return clone;
}

/// One shard's weighted objects. Externally synchronized: every call
/// (after single-threaded setup) must hold the owning ShardedLpt shard's
/// lock. Ids are dense and recycled after death (safe per the weight-
/// conservation invariant above).
class ShardWeightTable {
 public:
  static constexpr std::uint32_t kInitialWeight = 1u << 16;

  explicit ShardWeightTable(std::uint32_t shard) : shard_(shard) {}

  /// New base object pinning `entry` in this shard's LPT; returns its
  /// first (full-weight) reference.
  ShardRef create(core::EntryId entry);

  /// Interpose an indirection object over `exhausted` (typically weight
  /// 1, which can no longer split). The indirection lives in THIS table —
  /// the holder's home shard — absorbs the exhausted reference, and hands
  /// back a fresh full-weight reference to itself for the holder to split.
  ShardRef indirect(const ShardRef& exhausted);

  /// Apply one (possibly combined) weight decrement. A dying indirection
  /// appends the reference it held to `releases` (the caller re-enqueues
  /// it — it may target another shard); a dying base object appends its
  /// pinned LPT entry to `freedEntries` for the caller to decRef under
  /// the shard lock it already holds.
  void applyDecrement(ObjectId object, std::uint64_t weight,
                      std::vector<ShardRef>& releases,
                      std::vector<core::EntryId>& freedEntries);

  bool isLive(ObjectId id) const;
  std::size_t liveObjects() const { return liveCount_; }
  std::uint64_t indirectionsCreated() const { return indirectionsCreated_; }

 private:
  struct Object {
    std::uint64_t weight = 0;
    bool live = false;
    bool isIndirection = false;
    core::EntryId entry = core::kNoEntry;  ///< base objects only
    ShardRef target;                       ///< indirections only
  };

  Object& live(ObjectId id);
  ObjectId allocateId();

  std::uint32_t shard_;
  std::vector<Object> objects_;
  std::vector<ObjectId> freeIds_;
  std::size_t liveCount_ = 0;
  std::uint64_t indirectionsCreated_ = 0;
};

/// Counters a queue keeps about its own traffic (all deterministic for a
/// session: they depend only on the session's own enqueue sequence).
struct QueueStats {
  std::uint64_t enqueued = 0;  ///< decrements handed to add()
  std::uint64_t combined = 0;  ///< merged into an already-pending update
  std::uint64_t messages = 0;  ///< per-shard batches sent (lock grabs)
  std::uint64_t flushes = 0;   ///< non-empty flush() calls
};

/// Session-local combining queue for weight decrements. No internal
/// locking — exactly one session owns each queue. Pending updates are
/// keyed (shard, object) in a sorted map, so combining behavior and
/// message grouping depend only on the enqueue sequence, never on thread
/// schedule.
class CombiningUpdateQueue {
 public:
  explicit CombiningUpdateQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Enqueue a reference's weight for decrement. Returns true when the
  /// queue has reached capacity and the caller should flush.
  bool add(const ShardRef& ref) {
    if (ref.weight == 0) {
      throw support::SimulationError("combining: enqueue of a dead ref");
    }
    ++stats_.enqueued;
    auto [it, inserted] =
        pending_.try_emplace({ref.shard, ref.object}, std::uint64_t{0});
    if (!inserted) ++stats_.combined;
    it->second += ref.weight;
    return pending_.size() >= capacity_;
  }

  /// Drain the queue completely, including cascades: `applyShard(shard,
  /// updates, releases)` must apply every (object, weight) update under
  /// that shard's lock and append any references released by dying
  /// indirections to `releases`; those are re-enqueued and flushed in the
  /// same call, so the queue is empty on return. Each flush's pending
  /// depth is recorded into `depths` (pass nullptr to skip).
  template <typename ApplyShard>
  void flush(ApplyShard&& applyShard, support::Histogram* depths) {
    if (pending_.empty()) return;
    ++stats_.flushes;
    if (depths != nullptr) depths->add(pending_.size());
    std::vector<std::pair<ObjectId, std::uint64_t>> updates;
    std::vector<ShardRef> releases;
    while (!pending_.empty()) {
      const auto batch = std::move(pending_);
      pending_.clear();
      auto it = batch.begin();
      while (it != batch.end()) {
        const std::uint32_t shard = it->first.first;
        updates.clear();
        for (; it != batch.end() && it->first.first == shard; ++it) {
          updates.emplace_back(it->first.second, it->second);
        }
        ++stats_.messages;
        releases.clear();
        applyShard(shard, updates, releases);
        for (const ShardRef& release : releases) {
          add(release);  // cascade — drained by the outer loop
        }
      }
    }
  }

  std::size_t pendingUpdates() const { return pending_.size(); }
  const QueueStats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::map<std::pair<std::uint32_t, ObjectId>, std::uint64_t> pending_;
  QueueStats stats_;
};

}  // namespace small::multilisp
