// The SMALL Multilisp memory system (Ch. 6, Figs 6.1, 6.4, 6.5, 6.6).
//
// Each node is a full SMALL memory system (a functional machine: LPT +
// heap). A node makes one of its objects visible to the others by
// *exporting* it: the export slot holds the object's total reference
// weight (Fig 6.4's new LPT organization keeps weights beside the local
// counts), and remote holders carry `WeightedRef`-style handles:
//   * copying a handle splits its weight locally — no message;
//   * dropping a handle enqueues a decrement in the holder node's
//     combining queue (Fig 6.6) — combined per target, flushed in
//     batches;
//   * when an export's weight returns to zero the owner releases its EP
//     reference, letting the local machine reclaim the structure;
//   * `fetch` materializes a *local copy* of a remote object on the
//     requesting node (Fig 6.5's non-local copying): one request and one
//     reply message, after which access is purely local.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "multilisp/nodes.hpp"
#include "sexpr/arena.hpp"
#include "small/machine.hpp"

namespace small::multilisp {

class DistributedSmall {
 public:
  using NodeId = std::uint32_t;
  using ExportId = std::uint32_t;

  /// A weighted handle to an exported object.
  struct RemoteRef {
    NodeId owner = 0;
    ExportId exportId = 0;
    std::uint32_t weight = 0;
  };

  struct Traffic {
    std::uint64_t exportMessages = 0;   ///< handle shipped to another node
    std::uint64_t copyMessages = 0;     ///< always 0 under weighting
    std::uint64_t decrementMessages = 0;///< flushed (combined) decrements
    std::uint64_t decrementsEnqueued = 0;
    std::uint64_t fetchMessages = 0;    ///< request + reply per fetch
  };

  struct Params {
    NodeId nodeCount = 4;
    std::size_t queueCapacity = 64;
    core::SmallMachine::Config machine{};
  };

  DistributedSmall() : DistributedSmall(Params{}) {}
  explicit DistributedSmall(Params params);

  core::SmallMachine& node(NodeId id);
  sexpr::Arena& arena() { return arena_; }
  sexpr::SymbolTable& symbols() { return symbols_; }

  /// Export `value` (an object on `owner`); the export takes over one EP
  /// reference on the owner and hands back the initial weighted handle.
  RemoteRef exportObject(NodeId owner, core::SmallMachine::Value value);

  /// Ship a handle to another node: counts one message (the handle's
  /// bits cross the network); the weight MOVES with it — the caller's
  /// original handle is spent and must not be copied or dropped again.
  RemoteRef ship(RemoteRef ref) {
    ++traffic_.exportMessages;
    return ref;
  }

  /// Copy a handle locally: weight split, no message (Fig 6.3).
  RemoteRef copyRef(RemoteRef& ref);

  /// Drop a handle from `holder`: enqueues a combined decrement.
  void dropRef(NodeId holder, RemoteRef ref);

  /// Flush every node's combining queue, applying the decrements.
  void flushAll();

  /// Fetch a local copy of the exported object onto `requester`
  /// (Fig 6.5): request + reply messages; returns a local value holding
  /// one EP reference on the requester's machine.
  core::SmallMachine::Value fetch(NodeId requester, const RemoteRef& ref);

  /// Is the exported object still live (weight outstanding)?
  bool exportLive(NodeId owner, ExportId exportId) const;

  const Traffic& traffic() const { return traffic_; }

  static constexpr std::uint32_t kInitialWeight = 1u << 16;

 private:
  struct Export {
    core::SmallMachine::Value value;
    std::uint64_t weight = 0;
    bool live = false;
  };
  struct Node {
    std::unique_ptr<core::SmallMachine> machine;
    std::vector<Export> exports;
    CombiningQueue queue{64};
  };

  void applyDecrement(NodeId owner, ExportId exportId, std::uint64_t weight);

  // Shared symbol space: the nodes exchange printed structure, which in a
  // real system would be a wire format; here one arena plays the network.
  sexpr::SymbolTable symbols_;
  sexpr::Arena arena_;
  Params params_;
  std::vector<Node> nodes_;
  Traffic traffic_;
};

}  // namespace small::multilisp
