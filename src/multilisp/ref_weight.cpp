#include "multilisp/ref_weight.hpp"

namespace small::multilisp {

using support::SimulationError;

WeightedObjectTable::Object& WeightedObjectTable::at(ObjectId id) {
  if (id >= objects_.size()) {
    throw SimulationError("WeightedObjectTable: bad object id");
  }
  return objects_[id];
}

const WeightedObjectTable::Object& WeightedObjectTable::at(
    ObjectId id) const {
  if (id >= objects_.size()) {
    throw SimulationError("WeightedObjectTable: bad object id");
  }
  return objects_[id];
}

WeightedRef WeightedObjectTable::create() {
  Object object;
  object.weight = kInitialWeight;
  object.live = true;
  objects_.push_back(object);
  ++liveCount_;
  WeightedRef ref;
  ref.object = static_cast<ObjectId>(objects_.size() - 1);
  ref.weight = kInitialWeight;
  return ref;
}

WeightedRef WeightedObjectTable::copy(WeightedRef& ref) {
  if (ref.weight == 0) {
    throw SimulationError("WeightedObjectTable: copy of a dead reference");
  }
  if (ref.weight > 1) {
    // The whole point: a local split, no message to the owner.
    const std::uint32_t half = ref.weight / 2;
    WeightedRef clone = ref;
    clone.weight = half;
    ref.weight -= half;
    return clone;
  }
  // Weight exhausted: interpose an indirection object with fresh weight
  // (Fig 6.5's non-local copy). The original reference moves into the
  // indirection; both outgoing references point at the indirection.
  Object indirection;
  indirection.weight = kInitialWeight;
  indirection.live = true;
  indirection.indirectTo = ref.object;
  indirection.indirectWeight = ref.weight;
  objects_.push_back(indirection);
  ++liveCount_;
  ++stats_.indirectionsCreated;
  const auto indirectionId = static_cast<ObjectId>(objects_.size() - 1);

  const std::uint32_t half = kInitialWeight / 2;
  ref.object = indirectionId;
  ref.weight = kInitialWeight - half;
  ref.throughIndirection = true;
  WeightedRef clone;
  clone.object = indirectionId;
  clone.weight = half;
  clone.throughIndirection = true;
  return clone;
}

void WeightedObjectTable::destroy(const WeightedRef& ref) {
  if (ref.weight == 0) {
    throw SimulationError("WeightedObjectTable: destroy of a dead reference");
  }
  ++stats_.deleteMessages;  // the one message weighting still pays
  applyDecrement(ref.object, ref.weight);
}

void WeightedObjectTable::applyDecrement(ObjectId id, std::uint32_t weight) {
  Object& object = at(id);
  if (!object.live) {
    throw SimulationError("WeightedObjectTable: decrement of dead object");
  }
  if (object.weight < weight) {
    throw SimulationError("WeightedObjectTable: weight underflow");
  }
  object.weight -= weight;
  if (object.weight == 0) {
    object.live = false;
    --liveCount_;
    if (object.indirectTo != kNoObjectId) {
      // The indirection held weight on the real target; release it.
      ++stats_.deleteMessages;
      applyDecrement(object.indirectTo, object.indirectWeight);
    }
  }
}

bool WeightedObjectTable::isLive(ObjectId id) const { return at(id).live; }

ObjectId WeightedObjectTable::resolve(ObjectId id) const {
  for (;;) {
    const Object& object = at(id);
    if (!object.live) {
      throw SimulationError(
          "WeightedObjectTable: resolve reached a dead object");
    }
    if (object.indirectTo == kNoObjectId) return id;
    id = object.indirectTo;
  }
}

std::uint32_t WeightedObjectTable::storedWeight(ObjectId id) const {
  return static_cast<std::uint32_t>(at(id).weight);
}

}  // namespace small::multilisp
