#include "multilisp/service.hpp"

#include <string>
#include <utility>

#include "obs/names.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/session.hpp"

namespace small::multilisp {

using core::EntryId;
using support::SimulationError;

namespace {

/// Everything one session owns. Sessions only ever touch their own state
/// plus, under the owning shard's lock, the shared tables — the
/// ShardedLpt guard is the only synchronization in the whole service.
struct SessionState {
  std::uint32_t home = 0;
  std::deque<ShardRef> held;
  CombiningUpdateQueue queue;
  support::Rng rng;
  SessionStats stats;

  SessionState(std::size_t queueCapacity, std::uint64_t seed)
      : queue(queueCapacity), rng(seed) {}
};

class ServiceRun {
 public:
  ServiceRun(const ServiceConfig& config, std::size_t sessionCount)
      : config_(config),
        sessionCount_(sessionCount),
        lpt_(config.shardCount, shardSize(config, sessionCount),
             core::ReclaimPolicy::kRecursive) {
    if (sessionCount == 0) {
      throw SimulationError("service: no sessions");
    }
    tables_.reserve(config.shardCount);
    for (std::uint32_t s = 0; s < config.shardCount; ++s) {
      tables_.emplace_back(s);
    }
    sessions_.reserve(sessionCount);
    for (std::size_t i = 0; i < sessionCount; ++i) {
      // The churn RNG is distinct from the replay seed chain so hooking
      // the replay cannot perturb it (and vice versa).
      sessions_.emplace_back(
          config.queueCapacity,
          support::splitmix64(
              support::deriveTaskSeed(config.replay.seed, i) ^
              0x5e551044c0ffee11ull));
      sessions_.back().home =
          lpt_.homeShard(static_cast<std::uint64_t>(i));
      if (config.telemetryEvery > 0) {
        sessions_.back().stats.telemetry.enable("session/" +
                                                std::to_string(i));
      }
    }
  }

  ServiceResult run(const std::vector<SessionSource>& sources,
                    int concurrency) {
    seedPhase();
    const support::SessionTiming timing = support::runSessions(
        sessionCount_, concurrency,
        [&](std::size_t i) { runSession(i, sources[i]); });
    return collect(timing);
  }

 private:
  /// Entries one shard must be able to hold at once. Only base objects
  /// pin entries (indirections are table-only), so the live bound is the
  /// homed sessions' working sets plus every queue's pending decrements,
  /// with slack for cascade transients.
  static std::uint32_t shardSize(const ServiceConfig& config,
                                 std::size_t sessionCount) {
    if (config.shardLptSize != 0) return config.shardLptSize;
    const std::uint64_t homed =
        (sessionCount + config.shardCount - 1) / config.shardCount;
    const std::uint64_t bound =
        homed * (config.seedObjects + config.maxHeldRefs + 1) +
        sessionCount * config.queueCapacity + 16 * sessionCount + 256;
    return static_cast<std::uint32_t>(bound);
  }

  /// Phase 0, strictly serial in id order: every session publishes its
  /// seed objects, then hands split references to the next `peerFanout`
  /// sessions — the deterministic cross-shard seeding.
  void seedPhase() {
    for (std::size_t i = 0; i < sessionCount_; ++i) {
      SessionState& s = sessions_[i];
      core::Lpt& lpt = lpt_.quiescedShard(s.home);
      for (std::uint32_t p = 0; p < config_.seedObjects; ++p) {
        s.held.push_back(tables_[s.home].create(allocateEntry(lpt)));
        ++s.stats.published;
      }
    }
    if (sessionCount_ < 2) return;
    std::vector<std::vector<ShardRef>> inboxes(sessionCount_);
    for (std::size_t i = 0; i < sessionCount_; ++i) {
      SessionState& s = sessions_[i];
      if (s.held.empty()) continue;
      for (std::uint32_t k = 1; k <= config_.peerFanout; ++k) {
        const std::size_t peer = (i + k) % sessionCount_;
        if (peer == i) break;
        ShardRef& ref = s.held[k % s.held.size()];
        inboxes[peer].push_back(splitRef(ref));
        ++s.stats.refCopies;
      }
    }
    for (std::size_t i = 0; i < sessionCount_; ++i) {
      for (const ShardRef& ref : inboxes[i]) {
        sessions_[i].held.push_back(ref);
      }
    }
  }

  static EntryId allocateEntry(core::Lpt& lpt) {
    const EntryId entry = lpt.allocate();
    if (entry == core::kNoEntry) {
      throw SimulationError(
          "service: shard LPT overflow (raise shardLptSize)");
    }
    lpt.incRef(entry);
    return entry;
  }

  void runSession(std::size_t i, const SessionSource& source) {
    SessionState& s = sessions_[i];
    core::ReplayConfig replay = config_.replay;
    replay.seed = support::deriveTaskSeed(config_.replay.seed, i);

    // Deterministic telemetry plane: snapshot the session's own state on
    // the primitive-count epoch clock. Everything watched is a pure
    // function of the session's op sequence, so the sampled series obey
    // the same any-concurrency byte contract as SessionStats.
    obs::Snapshotter snap(&s.stats.telemetry, config_.telemetryEvery);
    snap.watchValue(obs::names::kSvcQueueDepth, [&s] {
      return static_cast<double>(s.queue.pendingUpdates());
    });
    snap.watchValue(obs::names::kSvcHeldRefs, [&s] {
      return static_cast<double>(s.held.size());
    });
    snap.watchCounter(obs::names::kSvcPublished, &s.stats.published);
    snap.watchCounter(obs::names::kSvcRefCopies, &s.stats.refCopies);

    // GC pause series: collection timing is a pure function of the
    // session's own op sequence and machine config, so the sampled pause
    // deltas (and running max slice) stay on the deterministic plane —
    // this is where kIncremental's bounded safepoint slices become
    // visible in --telemetry-out. The machine lives inside the replay
    // call; the last-seen totals persist for the final post-replay
    // sample (snap.finish runs after the machine is gone).
    const core::SmallMachine* machine = nullptr;
    std::uint64_t gcPauseTotal = 0;
    std::uint64_t gcPauseMax = 0;
    std::uint64_t gcPauseSampled = 0;
    snap.watchValue(obs::names::kGcPause, [&] {
      if (machine != nullptr) {
        gcPauseTotal = machine->gcStats().totalPause;
      }
      const double delta =
          static_cast<double>(gcPauseTotal - gcPauseSampled);
      gcPauseSampled = gcPauseTotal;
      return delta;
    });
    snap.watchValue(obs::names::kGcMaxPause, [&] {
      if (machine != nullptr) {
        gcPauseMax = machine->gcStats().maxPause;
      }
      return static_cast<double>(gcPauseMax);
    });

    // Perf plane (schedule-dependent, Chrome trace only): the session's
    // observed replay rate, and — for sessions whose id maps one-to-one
    // onto a shard (i < shardCount; distinct homes by construction) —
    // the home shard's cumulative contended acquisitions. Restricting to
    // one sampler per shard keeps the tracks non-duplicated.
    const bool telemetryOn =
        config_.telemetryEvery > 0 && s.stats.telemetry.enabled();
    const bool sampleShard =
        telemetryOn && i < static_cast<std::size_t>(config_.shardCount);
    const std::uint64_t startUs = telemetryOn ? obs::wallMicrosNow() : 0;
    std::uint64_t nextPerf = 0;

    core::ReplayHook hook;
    hook.everyPrimitives = config_.publishEvery;
    hook.onMachineReady = [&machine](const core::SmallMachine& m) {
      machine = &m;
    };
    hook.onPrimitives = [&](std::uint64_t total) {
      tick(s);
      if (!telemetryOn) return;
      snap.advanceTo(total);
      if (total < nextPerf) return;
      if (sampleShard) {
        s.stats.telemetry.samplePerf(
            obs::names::kSvcShardContention,
            static_cast<double>(lpt_.contended(s.home)));
      }
      const std::uint64_t elapsedUs = obs::wallMicrosNow() - startUs;
      if (elapsedUs > 0) {
        s.stats.telemetry.samplePerf(
            obs::names::kSvcReplayRate,
            static_cast<double>(total) * 1e6 /
                static_cast<double>(elapsedUs));
      }
      nextPerf =
          (total / config_.telemetryEvery + 1) * config_.telemetryEvery;
    };
    if (source.mapped != nullptr) {
      s.stats.replay = core::replayMappedTrace(replay, *source.mapped,
                                               config_.mappedBatch, hook);
    } else if (source.pre != nullptr) {
      s.stats.replay = core::replayTrace(replay, *source.pre, hook);
    } else {
      throw SimulationError("service: session source has no trace");
    }
    machine = nullptr;  // destroyed with the replay; totals cached above
    // Shutdown: retire the whole working set and drain the queue, so the
    // session's entire outstanding weight is returned before it joins.
    while (!s.held.empty()) {
      destroyRef(s, s.held.front());
      s.held.pop_front();
    }
    flushQueue(s);
    s.stats.queue = s.queue.stats();
    // Final deterministic sample at the session's last epoch: queue and
    // working set drained to zero, totals at their end-of-run values.
    snap.finish(s.stats.replay.primitives);
  }

  /// One service tick, between trace events: publish a fresh object,
  /// maybe copy a reference, retire beyond the working-set bound.
  void tick(SessionState& s) {
    {
      core::ShardedLpt::Guard guard = lpt_.lock(s.home);
      s.held.push_back(
          tables_[s.home].create(allocateEntry(guard.lpt())));
      ++s.stats.published;
    }
    if (s.rng.chance(config_.copyProb)) copyRef(s);
    while (s.held.size() > config_.maxHeldRefs) {
      destroyRef(s, s.held.front());
      s.held.pop_front();
    }
  }

  void copyRef(SessionState& s) {
    if (s.held.empty()) return;
    // Split one lineage clone-of-clone so its weight halves every step:
    // a burst longer than 16 drives a fresh 2^16 reference all the way
    // to weight 1, which is what makes the indirection escape real
    // traffic instead of a theoretical path.
    const std::size_t idx = s.rng.below(s.held.size());
    const std::uint32_t burst =
        1 + static_cast<std::uint32_t>(s.rng.below(config_.splitBurst));
    for (std::uint32_t b = 0; b < burst; ++b) {
      // deque never invalidates references on push_back.
      ShardRef& ref = b == 0 ? s.held[idx] : s.held.back();
      if (ref.weight >= 2) {
        // The common case Ch. 6 optimizes for: split locally, no lock.
        s.held.push_back(splitRef(ref));
      } else {
        // Weight exhausted: interpose an indirection in OUR home shard
        // (one home lock, no remote traffic), then split that.
        core::ShardedLpt::Guard guard = lpt_.lock(s.home);
        ShardRef indirection = tables_[s.home].indirect(ref);
        ++s.stats.indirections;
        ShardRef clone = splitRef(indirection);
        ref = indirection;
        s.held.push_back(clone);
      }
      ++s.stats.refCopies;
    }
  }

  void destroyRef(SessionState& s, const ShardRef& ref) {
    ++s.stats.refDestroys;
    if (s.queue.add(ref)) flushQueue(s);
  }

  void flushQueue(SessionState& s) {
    s.queue.flush(
        [&](std::uint32_t shard,
            const std::vector<std::pair<ObjectId, std::uint64_t>>& updates,
            std::vector<ShardRef>& releases) {
          // One lock acquisition serves the whole per-shard batch — the
          // combining queue's entire purpose.
          core::ShardedLpt::Guard guard = lpt_.lock(shard);
          std::vector<EntryId> freed;
          for (const auto& [object, weight] : updates) {
            tables_[shard].applyDecrement(object, weight, releases, freed);
          }
          for (const EntryId entry : freed) {
            guard.lpt().decRef(entry);
          }
        },
        &s.stats.queueDepths);
  }

  ServiceResult collect(const support::SessionTiming& timing) {
    ServiceResult result;
    result.sessions.reserve(sessionCount_);
    for (SessionState& s : sessions_) {
      result.totalPrimitives += s.stats.replay.primitives;
      result.sessions.push_back(std::move(s.stats));
    }
    for (std::uint32_t shard = 0; shard < lpt_.shardCount(); ++shard) {
      core::Lpt& lpt = lpt_.quiescedShard(shard);
      result.shardLpt.push_back(lpt.stats());
      result.residualEntries += lpt.inUseCount();
      result.residualObjects += tables_[shard].liveObjects();
      result.shardAcquisitions.push_back(lpt_.acquisitions(shard));
      result.shardContended.push_back(lpt_.contended(shard));
    }
    result.wallSeconds = timing.wallSeconds;
    return result;
  }

  const ServiceConfig& config_;
  std::size_t sessionCount_;
  core::ShardedLpt lpt_;
  std::vector<ShardWeightTable> tables_;
  std::vector<SessionState> sessions_;
};

}  // namespace

ServiceResult runService(const ServiceConfig& config,
                         const std::vector<SessionSource>& sources,
                         int concurrency) {
  ServiceRun run(config, sources.size());
  return run.run(sources, concurrency);
}

}  // namespace small::multilisp
