// Multilisp futures and pcall (Ch. 6, §6.2.1.2).
//
// Halstead's Multilisp adds (future X) — begin evaluating X and return a
// placeholder immediately — and pcall for parallel argument evaluation.
// This module provides that evaluation model over a fixed worker pool:
//   * Future<T>: a placeholder that blocks on touch (force),
//   * TaskPool: the processor pool (Class P machine, Fig 2.2),
//   * pcall: evaluate a set of thunks in parallel, then apply.
// Determinism note: tasks are side-effect-free value computations here;
// the sequential-Lisp-consistency argument of §6.2.1.1 is enforced by
// construction rather than by dataflow analysis.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace small::multilisp {

/// Fixed pool of worker threads consuming a FIFO of tasks.
class TaskPool {
 public:
  explicit TaskPool(unsigned workers = std::thread::hardware_concurrency());
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Schedule `fn`; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    ready_.notify_one();
    return future;
  }

  unsigned workerCount() const { return static_cast<unsigned>(workers_.size()); }
  std::uint64_t tasksExecuted() const;

 private:
  void workerLoop();

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::uint64_t executed_ = 0;
};

/// A Multilisp future: schedule on construction, block on touch().
template <typename T>
class Future {
 public:
  template <typename Fn>
  Future(TaskPool& pool, Fn&& fn) : future_(pool.submit(std::forward<Fn>(fn))) {}

  /// Touching a future blocks until its value is determined.
  T touch() { return future_.get(); }

 private:
  std::future<T> future_;
};

/// pcall: evaluate every argument thunk in parallel, then apply `fn` to
/// the results — the EXPR-tuple evaluation of §6.2.1.2.
template <typename Fn, typename ArgFn>
auto pcall(TaskPool& pool, Fn&& fn, const std::vector<ArgFn>& argThunks) {
  using Arg = std::invoke_result_t<ArgFn>;
  std::vector<std::future<Arg>> futures;
  futures.reserve(argThunks.size());
  for (const ArgFn& thunk : argThunks) {
    futures.push_back(pool.submit(thunk));
  }
  std::vector<Arg> args;
  args.reserve(futures.size());
  for (auto& future : futures) {
    args.push_back(future.get());
  }
  return fn(std::move(args));
}

}  // namespace small::multilisp
