// The long-lived multi-session SMALL service (Ch. 6 at production
// scale): N tenant sessions replay independent traces concurrently, each
// on its own SmallMachine, while sharing one sharded structured memory
// (core::ShardedLpt) through the Ch. 6 reference-weighting protocol
// (multilisp/combining.hpp).
//
// Every session periodically (ReplayHook, every `publishEvery`
// primitives) publishes an object into its home shard, copies references
// — weight splits locally, weight-1 copies interpose an indirection in
// the home shard — and retires its oldest references through a
// session-local combining queue that batches weight decrements per
// target shard.
//
// Determinism contract (what may go into a deterministic --metrics-out):
//   * SessionStats are a pure function of (session id, trace, seed): the
//     replay result, publish/copy/destroy/indirection counts, and the
//     combining queue's counters + depth histogram depend only on the
//     session's own deterministic op sequence, never on thread schedule.
//   * Per-shard LptStats totals are schedule-independent too: each base
//     object is exactly one allocate + one incRef + one decRef + one
//     free, and weight conservation fixes the totals regardless of which
//     session applies the dying decrement.
//   * Wall-clock throughput and lock acquisition/contention counts ARE
//     schedule-dependent; they live in ServiceResult's perf plane and
//     must only reach stdout / --perf-out.
// bench/service_throughput enforces the contract by byte-diffing merged
// metrics across session counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "multilisp/combining.hpp"
#include "obs/timeseries.hpp"
#include "small/machine_replay.hpp"
#include "small/sharded_lpt.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace small::multilisp {

struct ServiceConfig {
  std::uint32_t shardCount = 4;
  /// Entries per shard LPT; 0 derives a safe bound from the session
  /// count and the knobs below (only base objects pin entries).
  std::uint32_t shardLptSize = 0;
  /// Objects each session publishes during serial setup (phase 0).
  std::uint32_t seedObjects = 4;
  /// Cross-session references handed out in phase 0: session i seeds a
  /// split reference into the next `peerFanout` sessions' working sets,
  /// so remote decrements exist from the start.
  std::uint32_t peerFanout = 2;
  /// Primitives replayed between shard ticks (publish/copy/retire).
  std::uint64_t publishEvery = 64;
  /// Working-set bound: oldest references retire beyond this.
  std::size_t maxHeldRefs = 64;
  /// Pending-update bound of each session's combining queue.
  std::size_t queueCapacity = 32;
  /// Probability a tick copies a random held reference.
  double copyProb = 0.75;
  /// A copy tick splits one lineage up to this many times in a row
  /// (clone-of-clone), so carried weights decay geometrically. Must be
  /// > 16 for kInitialWeight = 2^16 references to ever reach weight 1
  /// and exercise the indirection escape.
  std::uint32_t splitBurst = 18;
  /// Batch size for SMTR-mapped session sources.
  std::size_t mappedBatch = 1024;
  /// Telemetry sampling stride in primitives (0 = telemetry off). When
  /// set, each session snapshots its deterministic series (queue depth,
  /// held refs, published objects) every `telemetryEvery` primitives —
  /// epochs and values are pure functions of (session id, trace, seed),
  /// extending the determinism contract to the time axis — and records
  /// schedule-dependent perf counter tracks (home-shard contention,
  /// observed replay rate) on the same stride.
  std::uint64_t telemetryEvery = 0;
  /// Per-session replay: session i derives its seed as
  /// deriveTaskSeed(replay.seed, i).
  core::ReplayConfig replay;
};

/// What one session replays: exactly one of `pre` (in-memory
/// preprocessed text trace) or `mapped` (SMTR file, streamed through
/// replayMappedTrace at O(batch) memory).
struct SessionSource {
  const trace::PreprocessedTrace* pre = nullptr;
  const trace::MappedTrace* mapped = nullptr;
};

/// Deterministic per-session stats (see the contract above).
struct SessionStats {
  core::ReplayResult replay;
  std::uint64_t published = 0;
  std::uint64_t refCopies = 0;
  std::uint64_t refDestroys = 0;
  std::uint64_t indirections = 0;
  QueueStats queue;
  support::Histogram queueDepths;
  /// Time-resolved samples (telemetryEvery > 0): deterministic epoch
  /// series plus perf counter tracks, labeled "session/<id>". Consumers
  /// append these to a TelemetryDoc in id order.
  obs::TelemetryBuffer telemetry;
};

struct ServiceResult {
  // --- deterministic plane ---
  std::vector<SessionStats> sessions;        ///< id order
  std::vector<core::LptStats> shardLpt;      ///< per-shard totals
  /// Weighted objects / LPT entries still live after shutdown. Weight
  /// conservation says both must be zero; callers should treat nonzero
  /// as a protocol bug and fail.
  std::uint64_t residualObjects = 0;
  std::uint64_t residualEntries = 0;

  // --- perf plane (schedule-dependent: stdout / --perf-out only) ---
  double wallSeconds = 0.0;
  std::uint64_t totalPrimitives = 0;
  std::vector<std::uint64_t> shardAcquisitions;
  std::vector<std::uint64_t> shardContended;
};

/// Run `sources.size()` sessions over at most `concurrency` threads
/// (<= 0: hardware concurrency). The tenant roster — and with it every
/// deterministic stat — is fixed by `sources`; `concurrency` only sets
/// how many run at once.
ServiceResult runService(const ServiceConfig& config,
                         const std::vector<SessionSource>& sources,
                         int concurrency);

}  // namespace small::multilisp
