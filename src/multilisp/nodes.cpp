#include "multilisp/nodes.hpp"

namespace small::multilisp {

bool CombiningQueue::add(const WeightUpdate& update) {
  ++enqueued_;
  const std::uint64_t k = key(update.node, update.object);
  const auto it = pending_.find(k);
  if (it != pending_.end()) {
    it->second.weight += update.weight;
    ++combined_;
    return true;
  }
  pending_.emplace(k, update);
  return false;
}

NodeSystem::NodeSystem(Params params, support::Rng& rng)
    : params_(params), rng_(rng) {
  tables_.resize(params_.nodeCount);
  queues_.reserve(params_.nodeCount);
  for (std::uint32_t i = 0; i < params_.nodeCount; ++i) {
    queues_.emplace_back(params_.queueCapacity);
  }
  held_.resize(params_.nodeCount);

  // Seed: each node creates objects and hands the first reference to a
  // random peer (the typical "result shipped to caller" pattern).
  for (std::uint32_t node = 0; node < params_.nodeCount; ++node) {
    for (std::uint32_t i = 0; i < params_.objectsPerNode; ++i) {
      const WeightedRef ref = tables_[node].create();
      const auto holder =
          static_cast<std::uint32_t>(rng_.below(params_.nodeCount));
      held_[holder].push_back(HeldRef{node, ref});
    }
  }
}

TrafficReport NodeSystem::run(std::uint64_t events) {
  TrafficReport report;

  auto flushQueue = [&](std::uint32_t node) {
    queues_[node].flush([&](const WeightUpdate& update) {
      ++report.combinedMessages;
      (void)update;
    });
  };

  for (std::uint64_t e = 0; e < events; ++e) {
    const auto node =
        static_cast<std::uint32_t>(rng_.below(params_.nodeCount));
    std::vector<HeldRef>& mine = held_[node];
    if (mine.empty()) continue;
    const std::size_t index = rng_.below(mine.size());
    ++report.referenceEvents;

    const bool doCopy =
        rng_.chance(params_.copyFraction) || mine.size() < 4;
    if (doCopy) {
      HeldRef& source = mine[index];
      const WeightedRef clone = tables_[source.ownerNode].copy(source.ref);
      const auto receiver =
          static_cast<std::uint32_t>(rng_.below(params_.nodeCount));
      held_[receiver].push_back(HeldRef{source.ownerNode, clone});
      // Plain counting: a copy of a remote pointer costs an increment
      // message to the owner. Weighting: free.
      if (source.ownerNode != node) ++report.plainMessages;
    } else {
      const HeldRef victim = mine[index];
      mine[index] = mine.back();
      mine.pop_back();
      tables_[victim.ownerNode].destroy(victim.ref);
      if (victim.ownerNode != node) {
        // Both schemes send a decrement; the combining queue may merge it
        // with an earlier one to the same object.
        ++report.plainMessages;
        ++report.weightedMessages;
        queues_[node].add(
            WeightUpdate{victim.ownerNode, victim.ref.object,
                         victim.ref.weight});
        if (queues_[node].full()) flushQueue(node);
      }
    }
  }
  for (std::uint32_t node = 0; node < params_.nodeCount; ++node) {
    flushQueue(node);
  }
  return report;
}

}  // namespace small::multilisp
