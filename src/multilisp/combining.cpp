#include "multilisp/combining.hpp"

namespace small::multilisp {

using support::SimulationError;

ShardWeightTable::Object& ShardWeightTable::live(ObjectId id) {
  if (id >= objects_.size()) {
    throw SimulationError("ShardWeightTable: bad object id");
  }
  Object& object = objects_[id];
  if (!object.live) {
    throw SimulationError("ShardWeightTable: operation on a dead object");
  }
  return object;
}

ObjectId ShardWeightTable::allocateId() {
  if (!freeIds_.empty()) {
    const ObjectId id = freeIds_.back();
    freeIds_.pop_back();
    return id;
  }
  objects_.emplace_back();
  return static_cast<ObjectId>(objects_.size() - 1);
}

ShardRef ShardWeightTable::create(core::EntryId entry) {
  const ObjectId id = allocateId();
  Object& object = objects_[id];
  object = Object{};
  object.weight = kInitialWeight;
  object.live = true;
  object.entry = entry;
  ++liveCount_;
  return ShardRef{shard_, id, kInitialWeight};
}

ShardRef ShardWeightTable::indirect(const ShardRef& exhausted) {
  if (exhausted.weight == 0) {
    throw SimulationError("ShardWeightTable: indirect over a dead ref");
  }
  const ObjectId id = allocateId();
  Object& object = objects_[id];
  object = Object{};
  object.weight = kInitialWeight;
  object.live = true;
  object.isIndirection = true;
  object.target = exhausted;
  ++liveCount_;
  ++indirectionsCreated_;
  return ShardRef{shard_, id, kInitialWeight};
}

void ShardWeightTable::applyDecrement(ObjectId id, std::uint64_t weight,
                                      std::vector<ShardRef>& releases,
                                      std::vector<core::EntryId>& freedEntries) {
  Object& object = live(id);
  if (object.weight < weight) {
    throw SimulationError("ShardWeightTable: weight underflow");
  }
  object.weight -= weight;
  if (object.weight != 0) return;
  object.live = false;
  --liveCount_;
  if (object.isIndirection) {
    // The indirection held (usually weight-1) a reference of its own,
    // possibly to another shard; hand it back for re-enqueueing.
    releases.push_back(object.target);
  } else {
    freedEntries.push_back(object.entry);
  }
  freeIds_.push_back(id);
}

bool ShardWeightTable::isLive(ObjectId id) const {
  if (id >= objects_.size()) {
    throw SimulationError("ShardWeightTable: bad object id");
  }
  return objects_[id].live;
}

}  // namespace small::multilisp
