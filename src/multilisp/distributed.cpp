#include "multilisp/distributed.hpp"

#include "support/error.hpp"

namespace small::multilisp {

using core::SmallMachine;
using support::SimulationError;

DistributedSmall::DistributedSmall(Params params) : params_(params) {
  if (params_.nodeCount == 0) {
    throw SimulationError("DistributedSmall: zero nodes");
  }
  nodes_.resize(params_.nodeCount);
  for (Node& node : nodes_) {
    node.machine = std::make_unique<SmallMachine>(params_.machine);
    node.queue = CombiningQueue(params_.queueCapacity);
  }
}

SmallMachine& DistributedSmall::node(NodeId id) {
  if (id >= nodes_.size()) throw SimulationError("DistributedSmall: bad node");
  return *nodes_[id].machine;
}

DistributedSmall::RemoteRef DistributedSmall::exportObject(
    NodeId owner, SmallMachine::Value value) {
  Node& n = nodes_.at(owner);
  Export exported;
  exported.value = value;  // takes over the caller's EP reference
  exported.weight = kInitialWeight;
  exported.live = true;
  n.exports.push_back(exported);
  RemoteRef ref;
  ref.owner = owner;
  ref.exportId = static_cast<ExportId>(n.exports.size() - 1);
  ref.weight = kInitialWeight;
  return ref;
}

DistributedSmall::RemoteRef DistributedSmall::copyRef(RemoteRef& ref) {
  if (ref.weight < 2) {
    // Weight exhausted: in a full system an indirection object restarts
    // the weight (see WeightedObjectTable::copy); here the distributed
    // layer keeps handles plentiful by construction, so this is an error
    // the tests assert on rather than silently absorbing.
    throw SimulationError("DistributedSmall: handle weight exhausted");
  }
  const std::uint32_t half = ref.weight / 2;
  RemoteRef clone = ref;
  clone.weight = half;
  ref.weight -= half;
  return clone;
}

void DistributedSmall::dropRef(NodeId holder, RemoteRef ref) {
  Node& n = nodes_.at(holder);
  ++traffic_.decrementsEnqueued;
  n.queue.add(WeightUpdate{ref.owner, ref.exportId, ref.weight});
  if (n.queue.full()) {
    n.queue.flush([&](const WeightUpdate& update) {
      ++traffic_.decrementMessages;
      applyDecrement(update.node, update.object, update.weight);
    });
  }
}

void DistributedSmall::flushAll() {
  for (Node& n : nodes_) {
    n.queue.flush([&](const WeightUpdate& update) {
      ++traffic_.decrementMessages;
      applyDecrement(update.node, update.object, update.weight);
    });
  }
}

void DistributedSmall::applyDecrement(NodeId owner, ExportId exportId,
                                      std::uint64_t weight) {
  Node& n = nodes_.at(owner);
  Export& exported = n.exports.at(exportId);
  if (!exported.live || exported.weight < weight) {
    throw SimulationError("DistributedSmall: export weight underflow");
  }
  exported.weight -= weight;
  if (exported.weight == 0) {
    exported.live = false;
    // The export held the owner's EP reference; releasing it lets the
    // local machine reclaim the structure.
    n.machine->release(exported.value);
  }
}

bool DistributedSmall::exportLive(NodeId owner, ExportId exportId) const {
  return nodes_.at(owner).exports.at(exportId).live;
}

SmallMachine::Value DistributedSmall::fetch(NodeId requester,
                                            const RemoteRef& ref) {
  const Node& ownerNode = nodes_.at(ref.owner);
  const Export& exported = ownerNode.exports.at(ref.exportId);
  if (!exported.live) {
    throw SimulationError("DistributedSmall: fetch of a dead export");
  }
  // Request + reply. The reply's payload is the materialized structure;
  // the shared arena stands in for the wire format.
  traffic_.fetchMessages += 2;
  const sexpr::NodeRef wire =
      ownerNode.machine->writeList(arena_, exported.value);
  return nodes_.at(requester).machine->readList(arena_, wire);
}

}  // namespace small::multilisp
