// The SMALL Multilisp node system (Ch. 6, Figs 6.1, 6.4, 6.6).
//
// A Multilisp SMALL machine is a set of nodes, each an (EP, LP, heap)
// triple, exchanging messages for remote list references. This module
// models the *memory-management* traffic of such a system: remote
// references are weighted (see ref_weight.hpp), and each node batches its
// outgoing weight updates in a **combining queue** — updates addressed to
// the same remote object combine into one message (Fig 6.6), cutting bus
// traffic during reference-count bursts at function return.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "multilisp/ref_weight.hpp"
#include "support/rng.hpp"

namespace small::multilisp {

/// A weight-update destined for (node, object).
struct WeightUpdate {
  std::uint32_t node = 0;
  ObjectId object = kNoObjectId;
  std::uint64_t weight = 0;
};

/// Per-node outgoing queue that combines updates to the same target.
class CombiningQueue {
 public:
  explicit CombiningQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue an update; combines with a pending update to the same object
  /// when present. Returns true if it combined.
  bool add(const WeightUpdate& update);

  /// Drain everything, invoking `send` per (combined) message.
  template <typename Fn>
  void flush(Fn&& send) {
    for (auto& [key, update] : pending_) send(update);
    pending_.clear();
  }

  bool full() const { return pending_.size() >= capacity_; }
  std::size_t pendingCount() const { return pending_.size(); }
  std::uint64_t combinedCount() const { return combined_; }
  std::uint64_t enqueuedCount() const { return enqueued_; }

 private:
  static std::uint64_t key(std::uint32_t node, ObjectId object) {
    return (static_cast<std::uint64_t>(node) << 32) | object;
  }

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, WeightUpdate> pending_;
  std::uint64_t combined_ = 0;
  std::uint64_t enqueued_ = 0;
};

/// Traffic report from one system run.
struct TrafficReport {
  std::uint64_t referenceEvents = 0;   ///< copies + destroys performed
  std::uint64_t plainMessages = 0;     ///< messages plain counting would send
  std::uint64_t weightedMessages = 0;  ///< messages weighting sent (no queue)
  std::uint64_t combinedMessages = 0;  ///< messages after queue combining
};

/// A closed multi-node simulation: nodes create objects, share references
/// with random peers, copy and destroy them; the three accounting schemes
/// (plain counting, weighting, weighting + combining queues) are measured
/// over the identical event stream.
class NodeSystem {
 public:
  struct Params {
    std::uint32_t nodeCount = 4;
    std::size_t queueCapacity = 64;
    double copyFraction = 0.55;  ///< of reference events, rest are destroys
    std::uint32_t objectsPerNode = 64;
  };

  NodeSystem(Params params, support::Rng& rng);

  /// Run `events` reference events and return the traffic comparison.
  TrafficReport run(std::uint64_t events);

 private:
  struct HeldRef {
    std::uint32_t ownerNode = 0;
    WeightedRef ref;
  };

  Params params_;
  support::Rng& rng_;
  std::vector<WeightedObjectTable> tables_;  // one per node
  std::vector<CombiningQueue> queues_;       // one per node
  std::vector<std::vector<HeldRef>> held_;   // refs held by each node
};

}  // namespace small::multilisp
