// Reference weighting (Ch. 6, Figs 6.2-6.3).
//
// Plain reference counting in a message-passing multiprocessor costs a
// message on *every* remote pointer copy and delete. Reference weighting
// removes the copy messages: each pointer carries a weight, the object
// stores the total outstanding weight, copying a pointer splits its weight
// locally (no message), and only deletion sends a decrement. An object is
// garbage when its stored weight returns to zero.
//
// Pointers whose weight has decayed to 1 cannot split; they go through an
// *indirection object* that starts a fresh weight (the standard
// weighted-reference-counting escape, matching the thesis' discussion of
// non-local copying, Fig 6.5).
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace small::multilisp {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kNoObjectId = 0xffffffffu;

/// A remote pointer: target object plus carried weight.
struct WeightedRef {
  ObjectId object = kNoObjectId;
  std::uint32_t weight = 0;
  bool throughIndirection = false;  ///< reaches the target via an indirection
};

/// Message kinds on the inter-node bus (counted, not transported).
struct WeightMessageStats {
  std::uint64_t copyMessages = 0;    ///< plain counting: increment on copy
  std::uint64_t deleteMessages = 0;  ///< decrement on delete (both schemes)
  std::uint64_t indirectionsCreated = 0;
};

/// A node-local table of weighted objects. One instance models the objects
/// owned by a single node; WeightedRefs may be held anywhere.
class WeightedObjectTable {
 public:
  /// Initial weight handed to a new object's first reference.
  static constexpr std::uint32_t kInitialWeight = 1u << 16;

  /// Create an object; returns its first reference.
  WeightedRef create();

  /// Copy a reference locally: splits the weight, **no message**. When the
  /// weight is 1, an indirection object is created instead (one local
  /// allocation, still no remote message).
  WeightedRef copy(WeightedRef& ref);

  /// Delete a reference: sends one decrement message to the owner (here:
  /// applied immediately). May cascade through indirections.
  void destroy(const WeightedRef& ref);

  bool isLive(ObjectId id) const;
  std::uint32_t storedWeight(ObjectId id) const;
  std::size_t liveObjects() const { return liveCount_; }

  /// Follow the indirection chain from `id` down to the base object it
  /// ultimately reaches. Every hop must be live — a dead hop means a
  /// reference outlived its target, which the weighting invariant forbids
  /// — so this throws support::SimulationError on any dead object along
  /// the chain (the liveness oracle the concurrent stress test leans on).
  ObjectId resolve(ObjectId id) const;

  const WeightMessageStats& stats() const { return stats_; }

  /// Baseline comparator: what plain reference counting would have cost
  /// for the same copy/destroy sequence (one message per copy + delete).
  std::uint64_t plainCountingMessages() const {
    return stats_.copyMessages + stats_.deleteMessages;
  }

 private:
  struct Object {
    std::uint64_t weight = 0;  ///< total outstanding reference weight
    bool live = false;
    ObjectId indirectTo = kNoObjectId;  ///< set for indirection objects
    std::uint32_t indirectWeight = 0;   ///< weight the indirection holds
  };

  Object& at(ObjectId id);
  const Object& at(ObjectId id) const;
  void applyDecrement(ObjectId id, std::uint32_t weight);

  std::vector<Object> objects_;
  std::size_t liveCount_ = 0;
  WeightMessageStats stats_;
};

}  // namespace small::multilisp
