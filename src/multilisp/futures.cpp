#include "multilisp/futures.hpp"

#include <algorithm>

namespace small::multilisp {

TaskPool::TaskPool(unsigned workers) {
  const unsigned count = std::max(1u, workers);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++executed_;
    }
    task();
  }
}

std::uint64_t TaskPool::tasksExecuted() const {
  std::lock_guard lock(mutex_);
  return executed_;
}

}  // namespace small::multilisp
