// Strict numeric CLI parsing, shared by the bench flag layer and the
// tools (trace_gen's --scale/--seed and per-family knobs).
//
// The contract mirrors PR 7's --jobs hardening: a token is either a
// complete, in-range number or it is rejected — 0 where a positive count
// is required, negatives, overflow, and trailing garbage are all errors,
// never silently mapped to a default. Counts additionally accept the
// scientific forms a 10^8-10^9 scale axis makes ergonomic ("1e8",
// "2.5e8"), as long as the value is exactly integral.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace small::support {

/// Parse `text` as an unsigned count in [min, max]. Plain digit strings
/// go through strtoull; tokens containing '.', 'e', or 'E' go through
/// strtod and must land on an exact integer (so "1e8" works but "1.5"
/// does not). Returns false — leaving *out untouched — on an empty
/// token, any sign, non-numeric characters, trailing garbage, overflow,
/// a non-integral value, or a value outside [min, max].
inline bool parseCount(const char* text, std::uint64_t min,
                       std::uint64_t max, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  // strtoull/strtod both accept leading whitespace and signs; the flag
  // grammar does not ("-3" must be an error, not 2^64-3).
  if (!std::isdigit(static_cast<unsigned char>(text[0]))) return false;
  const bool scientific = std::strpbrk(text, ".eE") != nullptr;
  errno = 0;
  char* end = nullptr;
  std::uint64_t value = 0;
  if (scientific) {
    const double parsed = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0') return false;
    if (!std::isfinite(parsed) || parsed < 0.0) return false;
    if (std::floor(parsed) != parsed) return false;
    // 2^64 is not exactly representable; anything at or past it is out
    // of range for the integer domain regardless of `max`.
    if (parsed >= 18446744073709551616.0) return false;
    value = static_cast<std::uint64_t>(parsed);
  } else {
    value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0') return false;
  }
  if (value < min || value > max) return false;
  *out = value;
  return true;
}

/// Parse `text` as a double in [min, max] via strtod. Rejects empty
/// tokens, signs (use min = 0.0 and write "0.3", not "+.3"), trailing
/// garbage, and non-finite values.
inline bool parseDoubleIn(const char* text, double min, double max,
                          double* out) {
  if (text == nullptr || *text == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(text[0])) && text[0] != '.') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (!std::isfinite(value) || value < min || value > max) return false;
  *out = value;
  return true;
}

}  // namespace small::support
