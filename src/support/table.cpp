#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace small::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw Error("TextTable: empty header");
}

void TextTable::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw Error("TextTable: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto writeRow = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  auto writeRule = [&] {
    out << "+";
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    out << "\n";
  };

  writeRule();
  writeRow(header_);
  writeRule();
  for (const auto& row : rows_) writeRow(row);
  writeRule();
  return out.str();
}

std::string TextTable::renderCsv() const {
  std::ostringstream out;
  auto writeRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  writeRow(header_);
  for (const auto& row : rows_) writeRow(row);
  return out.str();
}

std::string formatDouble(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string formatPercent(double fraction, int decimals) {
  return formatDouble(fraction * 100.0, decimals) + "%";
}

}  // namespace small::support
