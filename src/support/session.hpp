// Session runner for the long-lived service mode: run N session bodies
// across a bounded worker pool and report how long the concurrent phase
// took.
//
// This is runIndexed (support/parallel.hpp) plus wall-clock timing — the
// sessions inherit the sweep harness's determinism discipline (id-indexed
// slots, per-session seeds via deriveTaskSeed, dynamic claiming that must
// not influence results), while the timing feeds the *nondeterministic*
// stats plane (throughput tables, --perf-out), never a deterministic
// --metrics-out.
#pragma once

#include <cstddef>
#include <functional>

namespace small::support {

struct SessionTiming {
  /// Wall seconds from before the first session was claimed to after the
  /// last one finished (workers joined).
  double wallSeconds = 0.0;
};

/// Run `session(id)` for every id in [0, sessionCount) across at most
/// `concurrency` threads (<= 0 means hardwareJobs(); 1 runs inline in id
/// order). Propagates the lowest-id failure after all sessions finish,
/// exactly like runIndexed.
SessionTiming runSessions(std::size_t sessionCount, int concurrency,
                          const std::function<void(std::size_t)>& session);

}  // namespace small::support
