#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace small::support {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::confidenceHalfWidth95() const {
  if (count_ < 2) return 0.0;
  // Two-sided 95% critical values of Student's t for df = 1..29. The
  // sample stddev underestimates at small n, so the normal z = 1.96 is
  // too tight there; from n = 30 on the difference is under 2%.
  static constexpr double kT95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  const std::uint64_t df = count_ - 1;
  const double critical = count_ < 30 ? kT95[df - 1] : 1.96;
  return critical * stddev() / std::sqrt(static_cast<double>(count_));
}

void Histogram::add(std::int64_t value, std::uint64_t count) {
  buckets_[value] += count;
  total_ += count;
}

std::uint64_t Histogram::countOf(std::int64_t value) const {
  const auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [value, count] : buckets_) {
    acc += static_cast<double>(value) * static_cast<double>(count);
  }
  return acc / static_cast<double>(total_);
}

double Histogram::cumulativeFraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [v, count] : buckets_) {
    if (v > value) break;
    below += count;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::int64_t Histogram::quantile(double q) const {
  if (q <= 0.0 || q > 1.0) {
    throw Error("Histogram::quantile: q out of (0,1]");
  }
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (const auto& [value, count] : buckets_) {
    seen += count;
    if (seen >= target) return value;
  }
  return buckets_.rbegin()->first;
}

std::string seriesToCsv(const std::vector<Series>& series) {
  std::ostringstream out;
  out << "x";
  for (const Series& s : series) out << "," << s.name;
  out << "\n";
  std::size_t rows = 0;
  for (const Series& s : series) rows = std::max(rows, s.x.size());
  for (std::size_t i = 0; i < rows; ++i) {
    bool wroteX = false;
    std::ostringstream line;
    for (const Series& s : series) {
      if (!wroteX && i < s.x.size()) {
        line << s.x[i];
        wroteX = true;
        break;
      }
    }
    for (const Series& s : series) {
      line << ",";
      if (i < s.y.size()) line << s.y[i];
    }
    out << line.str() << "\n";
  }
  return out.str();
}

std::string asciiPlot(const std::vector<Series>& series, int width,
                      int height) {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      any = true;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  }
  if (!any) return "(empty plot)\n";
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  const char* glyphs = "*o+x#@";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    const char glyph = glyphs[si % 6];
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const int col = static_cast<int>((s.x[i] - xmin) / (xmax - xmin) *
                                       (width - 1));
      const int row = static_cast<int>((s.y[i] - ymin) / (ymax - ymin) *
                                       (height - 1));
      canvas[static_cast<std::size_t>(height - 1 - row)]
            [static_cast<std::size_t>(col)] = glyph;
    }
  }

  std::ostringstream out;
  out << "y: [" << ymin << ", " << ymax << "]  x: [" << xmin << ", " << xmax
      << "]\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << glyphs[si % 6] << " = " << series[si].name;
  }
  out << "\n";
  for (const std::string& row : canvas) out << "|" << row << "|\n";
  return out.str();
}

}  // namespace small::support
