#include "support/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace small::support {

EmpiricalDistribution::EmpiricalDistribution(
    std::initializer_list<Bucket> buckets)
    : EmpiricalDistribution(std::span<const Bucket>(buckets.begin(),
                                                    buckets.size())) {}

EmpiricalDistribution::EmpiricalDistribution(std::span<const Bucket> buckets) {
  buckets_.assign(buckets.begin(), buckets.end());
  cumulative_.reserve(buckets_.size());
  for (const Bucket& bucket : buckets_) {
    if (bucket.weight < 0.0) {
      throw Error("EmpiricalDistribution: negative weight");
    }
    total_ += bucket.weight;
    cumulative_.push_back(total_);
  }
  if (!buckets_.empty() && total_ <= 0.0) {
    throw Error("EmpiricalDistribution: all weights zero");
  }
}

std::int64_t EmpiricalDistribution::sample(Rng& rng) const {
  if (buckets_.empty()) throw Error("EmpiricalDistribution: sample of empty");
  const double u = rng.uniform() * total_;
  const auto it = std::ranges::upper_bound(cumulative_, u);
  const auto index = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(buckets_.size()) - 1));
  return buckets_[index].value;
}

double EmpiricalDistribution::mean() const {
  if (buckets_.empty()) return 0.0;
  double acc = 0.0;
  for (const Bucket& bucket : buckets_) {
    acc += static_cast<double>(bucket.value) * bucket.weight;
  }
  return acc / total_;
}

EmpiricalDistribution makeGeometricTail(double ratio, std::int64_t maxValue) {
  if (ratio <= 0.0 || ratio >= 1.0) {
    throw Error("makeGeometricTail: ratio must be in (0, 1)");
  }
  if (maxValue < 1) throw Error("makeGeometricTail: maxValue must be >= 1");
  std::vector<EmpiricalDistribution::Bucket> buckets;
  buckets.reserve(static_cast<std::size_t>(maxValue));
  double w = 1.0;
  for (std::int64_t k = 1; k <= maxValue; ++k) {
    buckets.push_back({k, w});
    w *= ratio;
  }
  return EmpiricalDistribution(buckets);
}

PointerDistanceModel::PointerDistanceModel(Params params)
    : params_(params),
      tail_(makeGeometricTail(params.tailRatio, params.tailMax)) {}

std::int64_t PointerDistanceModel::sampleDistance(Rng& rng) const {
  std::int64_t magnitude;
  const double u = rng.uniform();
  if (u < params_.pNear) {
    magnitude = 1;
  } else if (u < params_.pNear + params_.pFar) {
    magnitude = 1 + static_cast<std::int64_t>(
                        rng.below(static_cast<std::uint64_t>(params_.farRange)));
  } else {
    // Near tail starting at distance 2.
    magnitude = 1 + tail_.sample(rng);
  }
  return rng.chance(0.5) ? magnitude : -magnitude;
}

}  // namespace small::support
