// Deterministic pseudo-random number generation for all stochastic
// experiment components.
//
// Every experiment in the paper that involves randomness (argument selection
// in the trace-driven simulator, Fig 5.2's reseeding study, synthetic trace
// generation) must be reproducible from a single 64-bit seed, so all
// stochastic code in this repository takes an explicit `Rng&` owned by the
// caller rather than touching any global generator.
#pragma once

#include <cstdint>
#include <limits>

namespace small::support {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through splitmix64 so that a single word seed
/// fills the full 256-bit state well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits give a uniformly distributed double mantissa.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  /// Lemire's unbiased multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace small::support
