#include "support/session.hpp"

#include <chrono>

#include "support/parallel.hpp"

namespace small::support {

SessionTiming runSessions(std::size_t sessionCount, int concurrency,
                          const std::function<void(std::size_t)>& session) {
  using clock = std::chrono::steady_clock;
  const clock::time_point start = clock::now();
  runIndexed(sessionCount, concurrency, session);
  const clock::time_point end = clock::now();
  SessionTiming timing;
  timing.wallSeconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  return timing;
}

}  // namespace small::support
