// Error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace small::support {

/// Base class for all errors raised by the small:: libraries, so callers can
/// catch library failures distinctly from standard-library exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed textual input (s-expression reader, trace files).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A Lisp program did something erroneous at run time (wrong arity, car of
/// an atom, unbound variable, ...).
class EvalError : public Error {
 public:
  using Error::Error;
};

/// A simulator invariant was violated (LPT refcount underflow, use of a
/// freed entry, ...). These indicate bugs in the caller, not in the data.
class SimulationError : public Error {
 public:
  using Error::Error;
};

}  // namespace small::support
