// Deterministic parallel sweep runner for the evaluation benches.
//
// The thesis' evaluation is built out of large independent sweeps — Fig 5.2
// alone is 60-90 reseeded simulator runs per trace, and every (trace ×
// config × seed × backend) study iterates a pure function over a read-only
// preprocessed trace. Those runs are embarrassingly parallel, but the
// repository's reproducibility contract (every number derivable from a
// single declared seed, byte-identical output run to run) must survive the
// fan-out. This module provides that:
//
//   * result slots are indexed by task id, so output order is a function of
//     the task list alone, never of completion order;
//   * each task derives its own `support::Rng` from a splitmix64 mix of the
//     task's declared seed and id — tasks never share generator state;
//   * `jobs == 1` runs every task inline on the calling thread in task
//     order, reproducing the serial path bit for bit;
//   * the first failure (lowest task id, matching where the serial loop
//     would have thrown) is captured and rethrown after the pool drains,
//     instead of tearing down the process from a worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace small::support {

/// Worker count used when the caller does not pin one (`--jobs` default):
/// std::thread::hardware_concurrency(), clamped to at least 1.
int hardwareJobs();

/// One splitmix64 step (Steele et al.) — the same finalizer `Rng::reseed`
/// uses to expand seeds, exposed so per-task seeds are derived rather than
/// consecutive (consecutive raw seeds correlate; mixed ones do not).
std::uint64_t splitmix64(std::uint64_t x);

/// The per-task seed contract: mix the sweep's declared base seed with the
/// task id. Stable across runs, machines and job counts by construction.
inline std::uint64_t deriveTaskSeed(std::uint64_t baseSeed,
                                    std::uint64_t taskId) {
  return splitmix64(baseSeed + 0x9e3779b97f4a7c15ull * (taskId + 1));
}

/// An Rng seeded per the task-seed contract.
inline Rng taskRng(std::uint64_t baseSeed, std::uint64_t taskId) {
  return Rng(deriveTaskSeed(baseSeed, taskId));
}

/// Run `task(id)` for every id in [0, taskCount) across `jobs` worker
/// threads (`jobs <= 0` means hardwareJobs()). Tasks are claimed from a
/// shared atomic cursor, so scheduling is dynamic, but nothing about a
/// task's inputs or outputs may depend on the claim order — callers write
/// results only into their own id's slot. With `jobs == 1` no thread is
/// spawned and the tasks run inline in id order. If any task throws, the
/// remaining unclaimed tasks are still run (their slots stay comparable),
/// and the exception from the lowest-id failure is rethrown here once all
/// workers have joined.
void runIndexed(std::size_t taskCount, int jobs,
                const std::function<void(std::size_t)>& task);

/// Map [0, taskCount) through `fn` into an id-indexed result vector.
/// `fn(id)` must be independent of every other task; `T` needs to be
/// default-constructible (slots are pre-sized so workers never reallocate).
template <typename T, typename Fn>
std::vector<T> runSweep(std::size_t taskCount, int jobs, Fn&& fn) {
  std::vector<T> results(taskCount);
  runIndexed(taskCount, jobs,
             [&](std::size_t id) { results[id] = fn(id); });
  return results;
}

/// Convenience overload: one task per element of `tasks`, result slot i
/// computed by `fn(tasks[i], i)`.
template <typename T, typename Item, typename Fn>
std::vector<T> runSweep(const std::vector<Item>& tasks, int jobs, Fn&& fn) {
  std::vector<T> results(tasks.size());
  runIndexed(tasks.size(), jobs,
             [&](std::size_t id) { results[id] = fn(tasks[id], id); });
  return results;
}

}  // namespace small::support
