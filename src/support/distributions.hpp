// Discrete distributions used to synthesize list structure and heap
// addresses.
//
// Two distribution families drive the simulation (§5.2.1):
//  * the (n, p) list-shape distributions measured in Chapter 3 (Figs 3.3a/b,
//    Table 3.1), used when splitting a heap object to decide how large its
//    car and cdr halves are, and
//  * Clark's list-cell pointer-distance distributions, used to assign heap
//    addresses to the car/cdr halves for the data-cache comparison (§5.2.5).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace small::support {

/// A discrete empirical distribution over integer values, sampled by inverse
/// transform on the cumulative weights. Weights need not be normalized.
class EmpiricalDistribution {
 public:
  struct Bucket {
    std::int64_t value = 0;
    double weight = 0.0;
  };

  EmpiricalDistribution() = default;
  EmpiricalDistribution(std::initializer_list<Bucket> buckets);
  explicit EmpiricalDistribution(std::span<const Bucket> buckets);

  /// Draw one value.
  std::int64_t sample(Rng& rng) const;

  /// Expected value of the distribution.
  double mean() const;

  bool empty() const { return buckets_.empty(); }

 private:
  std::vector<Bucket> buckets_;
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

/// Geometric-tail distribution over {1, 2, 3, ...}: P(k) proportional to
/// ratio^(k-1), truncated at `maxValue`. Matches the qualitative shape of
/// the n and p measurements: many short/simple lists, a thin long tail.
EmpiricalDistribution makeGeometricTail(double ratio, std::int64_t maxValue);

/// Clark-style pointer distance model (§3.2, used in §5.2.5).
///
/// Clark's static and dynamic studies found that most list-cell pointers
/// point a *small* distance away — a large mass at distance 1 (linearized
/// cdr chains) with a rapidly decaying tail, and an occasional far pointer.
/// This class reproduces that shape: distance 1 with probability `pNear`,
/// otherwise a geometric tail, with a small probability `pFar` of a long
/// jump, and a random sign.
class PointerDistanceModel {
 public:
  struct Params {
    double pNear = 0.55;   ///< mass at |distance| == 1
    double pFar = 0.05;    ///< mass spread far (fresh allocation elsewhere)
    double tailRatio = 0.7;///< geometric decay of the near tail
    std::int64_t tailMax = 64;
    std::int64_t farRange = 100000;
  };

  PointerDistanceModel() : PointerDistanceModel(Params{}) {}
  explicit PointerDistanceModel(Params params);

  /// Signed distance (never zero) from a parent cell to a child cell.
  std::int64_t sampleDistance(Rng& rng) const;

 private:
  Params params_;
  EmpiricalDistribution tail_;
};

}  // namespace small::support
