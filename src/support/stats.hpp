// Streaming statistics and plotting helpers for the experiment harnesses.
//
// The paper reports most of its results as cumulative plots (Figs 3.4-3.13,
// 5.1-5.5) and small summary tables. `RunningStats`, `Histogram` and
// `CumulativeSeries` provide exactly those shapes without retaining the raw
// event streams.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace small::support {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Half width of the normal-approximation 95% confidence interval on the
  /// mean; used for the Fig 5.2 occupancy-interval study.
  double confidenceHalfWidth95() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sparse integer histogram (value -> count) with cumulative queries.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t count = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t countOf(std::int64_t value) const;
  double mean() const;

  /// Fraction of mass at values <= `value`.
  double cumulativeFraction(std::int64_t value) const;

  /// Smallest value v such that cumulativeFraction(v) >= q, for q in (0,1].
  /// An empty histogram has every quantile 0 (a run that never collected
  /// reports a well-defined zero pause); q outside (0,1] throws.
  std::int64_t quantile(double q) const;

  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// A named (x, y) series, rendered to CSV and to a coarse ASCII plot — the
/// textual stand-ins for the thesis figures.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
};

/// Renders one or more series sharing an x axis as a CSV block.
std::string seriesToCsv(const std::vector<Series>& series);

/// Coarse ASCII line plot of several series on a shared canvas; good enough
/// to eyeball the knee/cumulative shapes the thesis figures show.
std::string asciiPlot(const std::vector<Series>& series, int width = 72,
                      int height = 20);

}  // namespace small::support
