#include "support/parallel.hpp"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace small::support {

int hardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void runIndexed(std::size_t taskCount, int jobs,
                const std::function<void(std::size_t)>& task) {
  if (taskCount == 0) return;
  if (jobs <= 0) jobs = hardwareJobs();

  if (jobs == 1) {
    // The serial reference path: no threads, no claim cursor, no capture —
    // exceptions propagate exactly as a plain for loop's would.
    for (std::size_t id = 0; id < taskCount; ++id) task(id);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex failureMutex;
  std::exception_ptr firstFailure;
  std::size_t firstFailureId = std::numeric_limits<std::size_t>::max();

  auto worker = [&] {
    for (;;) {
      const std::size_t id = cursor.fetch_add(1, std::memory_order_relaxed);
      if (id >= taskCount) return;
      try {
        task(id);
      } catch (...) {
        // Keep the lowest-id failure — the one the serial loop would have
        // surfaced — regardless of which worker hit it first.
        std::lock_guard<std::mutex> lock(failureMutex);
        if (id < firstFailureId) {
          firstFailureId = id;
          firstFailure = std::current_exception();
        }
      }
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), taskCount);
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  if (firstFailure) std::rethrow_exception(firstFailure);
}

}  // namespace small::support
