// Console table rendering for the bench harnesses that regenerate the
// thesis tables (5.1-5.5, 3.1, 3.2).
#pragma once

#include <string>
#include <vector>

namespace small::support {

/// A simple left-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Render with column widths fitted to content, in the style of the
  /// thesis tables.
  std::string render() const;

  /// Render as CSV for downstream plotting.
  std::string renderCsv() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers used across benches.
std::string formatDouble(double value, int decimals = 2);
std::string formatPercent(double fraction, int decimals = 2);

}  // namespace small::support
