#include "analysis/census.hpp"

namespace small::analysis {

PrimitiveCensus censusPrimitives(const trace::Trace& trace) {
  PrimitiveCensus census;
  for (const trace::Event& event : trace.events()) {
    if (event.kind != trace::EventKind::kPrimitive) continue;
    ++census.counts[static_cast<std::size_t>(event.primitive)];
    ++census.total;
  }
  return census;
}

ShapeStatistics censusShapes(const trace::Trace& trace) {
  ShapeStatistics stats;
  for (const trace::Event& event : trace.events()) {
    if (event.kind != trace::EventKind::kPrimitive) continue;
    for (const trace::ObjectRecord& arg : event.args) {
      if (!arg.isList) continue;
      stats.n.add(arg.n);
      stats.p.add(arg.p);
      stats.nHistogram.add(arg.n);
      stats.pHistogram.add(arg.p);
    }
  }
  return stats;
}

}  // namespace small::analysis
