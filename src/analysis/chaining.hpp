// Primitive function chaining (§3.3.2.3, Table 3.2).
//
// "We say that primitive function chaining has occurred if the value
//  returned by one primitive function is immediately passed to another
//  primitive function."
#pragma once

#include <array>
#include <cstdint>

#include "trace/preprocess.hpp"

namespace small::analysis {

struct ChainingStats {
  /// Per-primitive: calls whose (first) list argument was the previous
  /// call's return value, and total calls with a list argument.
  std::array<std::uint64_t, trace::kPrimitiveCount> chained{};
  std::array<std::uint64_t, trace::kPrimitiveCount> total{};

  double chainedFraction(trace::Primitive p) const {
    const auto i = static_cast<std::size_t>(p);
    if (total[i] == 0) return 0.0;
    return static_cast<double>(chained[i]) / static_cast<double>(total[i]);
  }
};

ChainingStats analyzeChaining(const trace::PreprocessedTrace& trace);

}  // namespace small::analysis
