#include "analysis/chaining.hpp"

namespace small::analysis {

ChainingStats analyzeChaining(const trace::PreprocessedTrace& trace) {
  ChainingStats stats;
  for (const trace::PreprocessedEvent& event : trace.events) {
    if (event.kind != trace::EventKind::kPrimitive) continue;
    bool hasListArg = false;
    bool isChained = false;
    for (const trace::PreprocessedObject& arg : event.args) {
      if (arg.id == trace::kNoObject) continue;
      hasListArg = true;
      if (arg.chained) isChained = true;
      break;  // the first list argument decides, as in the thesis' traces
    }
    if (!hasListArg) continue;
    const auto i = static_cast<std::size_t>(event.primitive);
    ++stats.total[i];
    if (isChained) ++stats.chained[i];
  }
  return stats;
}

}  // namespace small::analysis
