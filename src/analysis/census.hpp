// Benchmark characterization (§3.3.1): primitive execution frequencies
// (Fig 3.1) and list shape statistics n and p (Table 3.1, Figs 3.3a/b).
#pragma once

#include <array>
#include <cstdint>

#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace small::analysis {

/// Fig 3.1: fraction of traced primitive calls per primitive.
struct PrimitiveCensus {
  std::array<std::uint64_t, trace::kPrimitiveCount> counts{};
  std::uint64_t total = 0;

  double fraction(trace::Primitive p) const {
    if (total == 0) return 0.0;
    return static_cast<double>(counts[static_cast<std::size_t>(p)]) /
           static_cast<double>(total);
  }
};

PrimitiveCensus censusPrimitives(const trace::Trace& trace);

/// Table 3.1 / Figs 3.3a-b: statistics of n and p over the list arguments
/// encountered in the trace ("for each list encountered we noted n ... and
/// p").
struct ShapeStatistics {
  support::RunningStats n;
  support::RunningStats p;
  support::Histogram nHistogram;
  support::Histogram pHistogram;
};

ShapeStatistics censusShapes(const trace::Trace& trace);

}  // namespace small::analysis
