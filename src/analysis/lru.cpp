#include "analysis/lru.hpp"

#include <algorithm>

namespace small::analysis {

std::uint32_t MattsonStack::reference(std::uint64_t item) {
  ++references_;
  const auto it = std::ranges::find(stack_, item);
  if (it == stack_.end()) {
    stack_.insert(stack_.begin(), item);
    ++coldMisses_;
    return 0;
  }
  const auto distance =
      static_cast<std::uint32_t>(it - stack_.begin()) + 1;
  stack_.erase(it);
  stack_.insert(stack_.begin(), item);
  distances_.add(distance);
  return distance;
}

double MattsonStack::hitRatio(std::uint32_t capacity) const {
  if (references_ == 0) return 0.0;
  std::uint64_t hits = 0;
  for (const auto& [distance, count] : distances_.buckets()) {
    if (distance <= static_cast<std::int64_t>(capacity)) hits += count;
  }
  return static_cast<double>(hits) / static_cast<double>(references_);
}

support::Series MattsonStack::hitRatioCurve(std::uint32_t maxCapacity) const {
  support::Series series{"hit ratio", {}, {}};
  std::uint64_t hits = 0;
  for (std::uint32_t capacity = 1; capacity <= maxCapacity; ++capacity) {
    hits += distances_.countOf(capacity);
    series.add(capacity, references_ == 0
                             ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(references_));
  }
  return series;
}

}  // namespace small::analysis
