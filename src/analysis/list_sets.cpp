#include "analysis/list_sets.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace small::analysis {

using trace::EventKind;
using trace::kNoObject;
using trace::PreprocessedEvent;
using trace::Primitive;

namespace {

/// Union-find over unique list identifiers with union by size.
class UnionFind {
 public:
  explicit UnionFind(std::uint32_t count)
      : parent_(count), size_(count, 1) {
    for (std::uint32_t i = 0; i < count; ++i) parent_[i] = i;
  }

  std::uint32_t find(std::uint32_t x) {
    std::uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::uint32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Returns the surviving root (and the absorbed one via out-param).
  std::uint32_t unite(std::uint32_t a, std::uint32_t b,
                      std::uint32_t& absorbed) {
    a = find(a);
    b = find(b);
    if (a == b) {
      absorbed = a;
      return a;
    }
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    absorbed = b;
    return a;
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

constexpr std::uint32_t kNoSet = 0xffffffffu;

/// LRU stack of active set ids with linear lookup (set populations are
/// small: Fig 3.4 shows ~10 sets covering 80% of references).
class LruStack {
 public:
  /// Depth of `set` (1 = most recent), or 0 if absent; moves it to front.
  std::uint32_t touch(std::uint32_t set) {
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      if (stack_[i] == set) {
        stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(i));
        stack_.insert(stack_.begin(), set);
        return static_cast<std::uint32_t>(i + 1);
      }
    }
    stack_.insert(stack_.begin(), set);
    return 0;  // first touch / cold miss
  }

  void remove(std::uint32_t set) {
    const auto it = std::ranges::find(stack_, set);
    if (it != stack_.end()) stack_.erase(it);
  }

 private:
  std::vector<std::uint32_t> stack_;
};

}  // namespace

ListSetPartition partitionListSets(const trace::PreprocessedTrace& trace,
                                   const ListSetOptions& options) {
  ListSetPartition out;
  out.traceLength = trace.primitiveCount;
  if (options.separationAbsolute) {
    out.window = *options.separationAbsolute;
  } else {
    out.window = static_cast<std::uint64_t>(
        std::llround(options.separationFraction *
                     static_cast<double>(trace.primitiveCount)));
  }
  // Temporally adjacent references are never "separated": a window below
  // one primitive call would split every chain in a short trace.
  out.window = std::max<std::uint64_t>(out.window, 1);
  if (trace.uniqueListCount == 0) return out;

  UnionFind components(trace.uniqueListCount);
  // Per-component active set (indexed by component root id).
  std::vector<std::uint32_t> activeSet(trace.uniqueListCount, kNoSet);
  std::vector<ListSet> sets;
  LruStack lru;

  auto setIsFresh = [&](std::uint32_t set, std::uint64_t now) {
    return now - sets[set].lastTouch <= out.window;
  };

  auto closeSet = [&](std::uint32_t set) { lru.remove(set); };

  // Merge set `loser` into `winner` (both active, both fresh).
  auto mergeSets = [&](std::uint32_t winner, std::uint32_t loser) {
    if (winner == loser) return winner;
    ListSet& w = sets[winner];
    const ListSet& l = sets[loser];
    w.references += l.references;
    w.firstTouch = std::min(w.firstTouch, l.firstTouch);
    w.lastTouch = std::max(w.lastTouch, l.lastTouch);
    lru.remove(loser);
    sets[loser] = ListSet{};  // emptied; filtered out at the end
    return winner;
  };

  // Resolve the active set of the component containing `id`, honoring the
  // separation constraint: a stale set is closed and replaced lazily.
  auto activeOf = [&](std::uint32_t id, std::uint64_t now,
                      bool createIfMissing) -> std::uint32_t {
    const std::uint32_t root = components.find(id);
    std::uint32_t set = activeSet[root];
    if (set != kNoSet && !setIsFresh(set, now)) {
      closeSet(set);
      set = kNoSet;
      activeSet[root] = kNoSet;
    }
    if (set == kNoSet && createIfMissing) {
      set = static_cast<std::uint32_t>(sets.size());
      sets.push_back(ListSet{0, now, now});
      activeSet[root] = set;
    }
    return set;
  };

  // Structural relation edges contributed by one primitive event.
  auto relate = [&](std::uint32_t a, std::uint32_t b, std::uint64_t now) {
    if (a == kNoObject || b == kNoObject) return;
    const std::uint32_t setA = activeOf(a, now, false);
    const std::uint32_t setB = activeOf(b, now, false);
    std::uint32_t absorbedRoot = 0;
    const std::uint32_t root = components.unite(a, b, absorbedRoot);
    // Combine the components' active sets.
    std::uint32_t merged = kNoSet;
    if (setA != kNoSet && setB != kNoSet) {
      merged = setA == setB ? setA : mergeSets(setA, setB);
    } else if (setA != kNoSet) {
      merged = setA;
    } else if (setB != kNoSet) {
      merged = setB;
    }
    activeSet[root] = merged;
    if (absorbedRoot != root) activeSet[absorbedRoot] = kNoSet;
  };

  // One list reference (argument occurrence) at position `now`.
  auto reference = [&](std::uint32_t id, std::uint64_t now) {
    const std::uint32_t set = activeOf(id, now, true);
    ListSet& s = sets[set];
    ++s.references;
    s.lastTouch = now;
    ++out.totalReferences;
    const std::uint32_t depth = lru.touch(set);
    out.lruDepths.add(depth == 0 ? 0 : static_cast<std::int64_t>(depth));
  };

  // A result flowing out of a primitive refreshes its component's window
  // without counting as a member reference.
  auto refreshResult = [&](std::uint32_t id, std::uint64_t now) {
    const std::uint32_t set = activeOf(id, now, true);
    sets[set].lastTouch = now;
  };

  std::uint64_t now = 0;
  for (const PreprocessedEvent& event : trace.events) {
    if (event.kind != EventKind::kPrimitive) continue;
    // Count references first...
    for (const trace::PreprocessedObject& arg : event.args) {
      if (arg.id != kNoObject) reference(arg.id, now);
    }
    // ...then grow the relation with this event's structural edges.
    const std::uint32_t result = event.result.id;
    switch (event.primitive) {
      case Primitive::kCar:
      case Primitive::kCdr:
        if (!event.args.empty()) relate(event.args[0].id, result, now);
        break;
      case Primitive::kCons:
      case Primitive::kAppend:
        for (const trace::PreprocessedObject& arg : event.args) {
          relate(arg.id, result, now);
        }
        break;
      case Primitive::kRplaca:
      case Primitive::kRplacd:
        if (event.args.size() >= 2) {
          relate(event.args[0].id, event.args[1].id, now);
        }
        break;
      default:
        break;
    }
    if (result != kNoObject) refreshResult(result, now);
    ++now;
  }

  // Drop emptied (merged-away) and referenceless sets.
  std::erase_if(sets, [](const ListSet& s) { return s.references == 0; });
  out.sets = std::move(sets);
  return out;
}

support::Series ListSetPartition::cumulativeReferencesBySetRank() const {
  support::Series series{"cumulative reference fraction", {}, {}};
  std::vector<std::uint64_t> sizes;
  sizes.reserve(sets.size());
  for (const ListSet& s : sets) sizes.push_back(s.references);
  std::ranges::sort(sizes, std::greater<>());
  std::uint64_t cum = 0;
  for (std::size_t rank = 0; rank < sizes.size(); ++rank) {
    cum += sizes[rank];
    series.add(static_cast<double>(rank + 1),
               totalReferences == 0
                   ? 0.0
                   : static_cast<double>(cum) /
                         static_cast<double>(totalReferences));
  }
  return series;
}

support::Series ListSetPartition::lifetimeCdfOverSets(int points) const {
  support::Series series{"set fraction", {}, {}};
  for (int i = 0; i <= points; ++i) {
    const double x = static_cast<double>(i) / points;
    std::size_t below = 0;
    for (const ListSet& s : sets) {
      if (s.lifetimeFraction(traceLength) <= x) ++below;
    }
    series.add(x * 100.0, sets.empty() ? 0.0
                                       : static_cast<double>(below) /
                                             static_cast<double>(sets.size()));
  }
  return series;
}

support::Series ListSetPartition::lifetimeCdfOverReferences(int points) const {
  support::Series series{"reference fraction", {}, {}};
  for (int i = 0; i <= points; ++i) {
    const double x = static_cast<double>(i) / points;
    std::uint64_t below = 0;
    for (const ListSet& s : sets) {
      if (s.lifetimeFraction(traceLength) <= x) below += s.references;
    }
    series.add(x * 100.0,
               totalReferences == 0
                   ? 0.0
                   : static_cast<double>(below) /
                         static_cast<double>(totalReferences));
  }
  return series;
}

support::Series ListSetPartition::lruDepthCdf(int maxDepth) const {
  support::Series series{"reference fraction", {}, {}};
  const std::uint64_t total = lruDepths.total();
  if (total == 0) return series;
  std::uint64_t cum = 0;
  for (int d = 1; d <= maxDepth; ++d) {
    cum += lruDepths.countOf(d);
    series.add(static_cast<double>(d),
               static_cast<double>(cum) / static_cast<double>(total));
  }
  return series;
}

}  // namespace small::analysis
