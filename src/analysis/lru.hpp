// Mattson single-pass LRU stack-distance analysis ([Matt70a], used by both
// Clark's studies and §3.3.2.3 / Fig 3.7).
//
// One pass over a reference stream yields the hit count for *every* LRU
// buffer size at once: a reference at stack distance d hits in any buffer
// of capacity >= d.
#pragma once

#include <cstdint>
#include <vector>

#include "support/stats.hpp"

namespace small::analysis {

/// Generic Mattson analyser over an arbitrary item-id stream.
class MattsonStack {
 public:
  /// Record a reference to `item`; returns its stack distance (1 = top) or
  /// 0 on a cold (first-ever) reference.
  std::uint32_t reference(std::uint64_t item);

  std::uint64_t references() const { return references_; }
  std::uint64_t coldMisses() const { return coldMisses_; }
  const support::Histogram& distances() const { return distances_; }

  /// Hit ratio for an LRU buffer holding `capacity` items.
  double hitRatio(std::uint32_t capacity) const;

  /// Series of hit ratios over capacities 1..maxCapacity (Fig 3.7 shape).
  support::Series hitRatioCurve(std::uint32_t maxCapacity) const;

 private:
  std::vector<std::uint64_t> stack_;  // front = most recent
  support::Histogram distances_;
  std::uint64_t references_ = 0;
  std::uint64_t coldMisses_ = 0;
};

}  // namespace small::analysis
