// The list-set partition (§3.3.2) — the thesis' central analytical device.
//
// "We say that two list references are related if one is the car or cdr of
//  the other. A list access reference stream can then be partitioned into
//  list sets, where each list set is a closure of related list references
//  with the added constraint that no two temporally adjacent members of the
//  list set are separated in the access trace by more than 10% of the total
//  length of the trace."
//
// Implementation: a union-find over unique list identifiers tracks the
// *structural* relation (grown by car/cdr/cons/rplac edges as the trace is
// replayed); each related component carries at most one *active* list set,
// and a component whose active set has not been touched for more than the
// separation window closes that set and opens a fresh one on its next
// reference. References are argument occurrences of list objects; results
// refresh their component's window (they are the values flowing into
// subsequent chained references).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/stats.hpp"
#include "trace/preprocess.hpp"

namespace small::analysis {

struct ListSetOptions {
  /// Separation constraint as a fraction of trace length (the thesis
  /// default is 10%).
  double separationFraction = 0.10;

  /// If set, an absolute separation window in primitive-call units,
  /// overriding the fraction (the Figs 3.11-3.13 "fixed constraint" study).
  std::optional<std::uint64_t> separationAbsolute;
};

struct ListSet {
  std::uint64_t references = 0;   ///< member reference count ("size")
  std::uint64_t firstTouch = 0;   ///< position of first member (primitive idx)
  std::uint64_t lastTouch = 0;    ///< position of last member

  /// Lifetime as a fraction of the trace length (§3.3.2.1).
  double lifetimeFraction(std::uint64_t traceLength) const {
    if (traceLength == 0) return 0.0;
    return static_cast<double>(lastTouch - firstTouch) /
           static_cast<double>(traceLength);
  }
};

struct ListSetPartition {
  std::vector<ListSet> sets;          ///< all non-empty list sets
  std::uint64_t totalReferences = 0;  ///< list references in the stream
  std::uint64_t traceLength = 0;      ///< primitive calls in the trace
  std::uint64_t window = 0;           ///< separation window actually used
  support::Histogram lruDepths;       ///< Fig 3.7: list-set LRU distances

  /// Fig 3.4: cumulative fraction of all list references contained in the k
  /// largest list sets, for k = 1..sets.size().
  support::Series cumulativeReferencesBySetRank() const;

  /// Fig 3.5: fraction of list sets with lifetime <= x% of trace length.
  support::Series lifetimeCdfOverSets(int points = 50) const;

  /// Fig 3.6: fraction of list references belonging to list sets with
  /// lifetime <= x% of trace length.
  support::Series lifetimeCdfOverReferences(int points = 50) const;

  /// Fig 3.7: fraction of references at LRU stack depth <= d.
  support::Series lruDepthCdf(int maxDepth = 32) const;
};

ListSetPartition partitionListSets(const trace::PreprocessedTrace& trace,
                                   const ListSetOptions& options = {});

}  // namespace small::analysis
