// The original node-based §5.2.5 comparison cache, retained verbatim as
// the executable specification of LRU line-cache semantics.
//
// `cache::LruCache` (lru_cache.hpp) is the production implementation — a
// flat, allocation-free layout. This class keeps the obviously-correct
// `std::list` + iterator-map form so that
//   * the randomized differential test (tests/cache_test.cpp) can assert
//     the flat cache agrees with it access by access, and
//   * micro_lpt can measure the node-based baseline in the same run as
//     the flat implementation (the BENCH_<date>.json before/after pair).
// It is not used on any simulation hot path.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "support/error.hpp"

namespace small::cache {

class ReferenceLruCache {
 public:
  /// `entryCount` lines of `lineSize` cells each (addresses are in cells).
  explicit ReferenceLruCache(std::uint64_t entryCount,
                             std::uint32_t lineSize = 1)
      : entryCount_(entryCount), lineSize_(lineSize) {
    if (entryCount == 0) throw support::Error("ReferenceLruCache: zero entries");
    if (lineSize == 0) throw support::Error("ReferenceLruCache: zero line size");
  }

  /// Access the cell at `address`. Returns true on hit. Misses fill the
  /// containing line, evicting the LRU line if full.
  bool access(std::uint64_t address) {
    const std::uint64_t line = address / lineSize_;
    const auto it = map_.find(line);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    ++misses_;
    if (map_.size() >= entryCount_) {
      const std::uint64_t victim = lru_.back();
      lru_.pop_back();
      map_.erase(victim);
    }
    lru_.push_front(line);
    map_[line] = lru_.begin();
    return false;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double hitRate() const {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(n);
  }

  std::uint64_t entryCount() const { return entryCount_; }
  std::uint32_t lineSize() const { return lineSize_; }
  std::uint64_t residentLines() const { return map_.size(); }

  void reset() {
    lru_.clear();
    map_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::uint64_t entryCount_;
  std::uint32_t lineSize_;

  // Most-recent at front. Values in map_ point into lru_.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace small::cache
