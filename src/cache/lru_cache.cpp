#include "cache/lru_cache.hpp"

namespace small::cache {

LruCache::LruCache(std::uint64_t entryCount, std::uint32_t lineSize)
    : entryCount_(entryCount), lineSize_(lineSize) {
  if (entryCount == 0) throw support::Error("LruCache: zero entries");
  if (lineSize == 0) throw support::Error("LruCache: zero line size");
}

bool LruCache::access(std::uint64_t address) {
  const std::uint64_t line = address / lineSize_;
  const auto it = map_.find(line);
  if (it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (map_.size() >= entryCount_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(line);
  map_[line] = lru_.begin();
  return false;
}

void LruCache::reset() {
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace small::cache
