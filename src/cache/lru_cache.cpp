#include "cache/lru_cache.hpp"

namespace small::cache {

namespace {

/// Smallest power of two >= max(2 * want, 16): load factor stays <= 1/2,
/// keeping linear-probe chains short.
std::uint64_t tableSizeFor(std::uint64_t want) {
  std::uint64_t size = 16;
  while (size < want * 2) size <<= 1;
  return size;
}

}  // namespace

LruCache::LruCache(std::uint64_t entryCount, std::uint32_t lineSize)
    : entryCount_(entryCount), lineSize_(lineSize) {
  if (entryCount == 0) throw support::Error("LruCache: zero entries");
  if (lineSize == 0) throw support::Error("LruCache: zero line size");
  table_.assign(tableSizeFor(entryCount), kNil);
  mask_ = table_.size() - 1;
}

std::uint64_t LruCache::findSlot(std::uint64_t line) const {
  std::uint64_t i = mixLine(line) & mask_;
  while (table_[i] != kNil && nodes_[table_[i]].line != line) {
    i = (i + 1) & mask_;
  }
  return i;
}

void LruCache::unlink(std::uint32_t n) {
  const Node& node = nodes_[n];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
}

void LruCache::linkFront(std::uint32_t n) {
  Node& node = nodes_[n];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = n;
  head_ = n;
  if (tail_ == kNil) tail_ = n;
}

void LruCache::eraseLine(std::uint64_t line) {
  std::uint64_t i = findSlot(line);
  table_[i] = kNil;
  // Backward-shift: any displaced entry downstream of the hole whose home
  // slot lies at or before the hole (cyclically) moves back into it.
  std::uint64_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    if (table_[j] == kNil) break;
    const std::uint64_t home = mixLine(nodes_[table_[j]].line) & mask_;
    if (((j - home) & mask_) >= ((j - i) & mask_)) {
      table_[i] = table_[j];
      table_[j] = kNil;
      i = j;
    }
  }
}

bool LruCache::access(std::uint64_t address) {
  const std::uint64_t line = address / lineSize_;
  const std::uint64_t slot = findSlot(line);
  if (table_[slot] != kNil) {
    ++hits_;
    const std::uint32_t n = table_[slot];
    if (head_ != n) {
      unlink(n);
      linkFront(n);
    }
    return true;
  }
  ++misses_;
  std::uint32_t n;
  if (used_ < entryCount_) {
    n = used_++;
    if (n == nodes_.size()) nodes_.emplace_back();
    nodes_[n].line = line;
    linkFront(n);
    table_[slot] = n;
    return false;
  }
  // At capacity: evict the LRU line, reusing its node in place. The
  // backward shift may move entries into `slot`, so re-probe to insert.
  n = tail_;
  eraseLine(nodes_[n].line);
  nodes_[n].line = line;
  unlink(n);
  linkFront(n);
  table_[findSlot(line)] = n;
  return false;
}

void LruCache::reset() {
  nodes_.clear();
  used_ = 0;
  head_ = kNil;
  tail_ = kNil;
  table_.assign(table_.size(), kNil);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace small::cache
