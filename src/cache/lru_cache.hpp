// The data-cache comparator (§5.2.5).
//
// "We considered a fully associative, LRU replacement data cache with the
//  same number of entries as the LPT... A 2 pointer list cell was assumed
//  to be the cachable unit." The Fig 5.5 study varies the line size from 1
//  to 16 cells while holding total capacity fixed (so entry count shrinks
//  as lines grow) and halves the per-entry size relative to LPT entries.
//
// The implementation keeps an LRU-ordered intrusive list over a hash map of
// resident lines, so each access is O(1) rather than O(entries).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "support/error.hpp"

namespace small::cache {

class LruCache {
 public:
  /// `entryCount` lines of `lineSize` cells each (addresses are in cells).
  LruCache(std::uint64_t entryCount, std::uint32_t lineSize = 1);

  /// Access the cell at `address`. Returns true on hit. Misses fill the
  /// containing line, evicting the LRU line if full (prefetching the rest
  /// of the line "for free" — the Fig 5.5 effect).
  bool access(std::uint64_t address);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double hitRate() const {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(n);
  }

  std::uint64_t entryCount() const { return entryCount_; }
  std::uint32_t lineSize() const { return lineSize_; }
  std::uint64_t residentLines() const { return map_.size(); }

  void reset();

 private:
  std::uint64_t entryCount_;
  std::uint32_t lineSize_;

  // Most-recent at front. Values in map_ point into lru_.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace small::cache
