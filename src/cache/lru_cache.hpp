// The data-cache comparator (§5.2.5).
//
// "We considered a fully associative, LRU replacement data cache with the
//  same number of entries as the LPT... A 2 pointer list cell was assumed
//  to be the cachable unit." The Fig 5.5 study varies the line size from 1
//  to 16 cells while holding total capacity fixed (so entry count shrinks
//  as lines grow) and halves the per-entry size relative to LPT entries.
//
// Flat, allocation-free layout: the LRU order is an intrusive doubly
// linked list of u32 indices threaded through a fixed vector of line
// nodes, and residency is an open-addressing (linear probing,
// backward-shift deletion) hash table of node indices. A hit is one probe
// plus four index writes; a miss at capacity reuses the victim's node in
// place — no per-access allocation and no pointer chasing. Semantics are
// identical to the node-based original, kept as cache::ReferenceLruCache
// (reference_lru.hpp) and asserted equivalent by the randomized
// differential test.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace small::cache {

class LruCache {
 public:
  /// `entryCount` lines of `lineSize` cells each (addresses are in cells).
  explicit LruCache(std::uint64_t entryCount, std::uint32_t lineSize = 1);

  /// Access the cell at `address`. Returns true on hit. Misses fill the
  /// containing line, evicting the LRU line if full (prefetching the rest
  /// of the line "for free" — the Fig 5.5 effect).
  bool access(std::uint64_t address);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double hitRate() const {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(n);
  }

  std::uint64_t entryCount() const { return entryCount_; }
  std::uint32_t lineSize() const { return lineSize_; }
  std::uint64_t residentLines() const { return used_; }

  void reset();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// A resident line: its address and its intrusive LRU links. Nodes are
  /// allocated once (index = arrival order until capacity) and reused in
  /// place on eviction.
  struct Node {
    std::uint64_t line = 0;
    std::uint32_t prev = kNil;  ///< toward most-recent
    std::uint32_t next = kNil;  ///< toward least-recent
  };

  /// splitmix64 finalizer — full-avalanche mix of the line address.
  static std::uint64_t mixLine(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Slot holding `line`'s node index, or the empty slot where it would
  /// be inserted (linear probe; load factor is capped at 1/2).
  std::uint64_t findSlot(std::uint64_t line) const;

  /// Remove `line` from the hash table (backward-shift deletion keeps
  /// probe chains contiguous — no tombstones to accumulate).
  void eraseLine(std::uint64_t line);

  void unlink(std::uint32_t n);
  void linkFront(std::uint32_t n);

  std::uint64_t entryCount_;
  std::uint32_t lineSize_;

  std::vector<Node> nodes_;   ///< grows to entryCount_, then fixed
  std::uint32_t used_ = 0;    ///< live nodes (== resident lines)
  std::uint32_t head_ = kNil; ///< most recently used
  std::uint32_t tail_ = kNil; ///< least recently used (eviction victim)

  std::vector<std::uint32_t> table_;  ///< node index or kNil
  std::uint64_t mask_ = 0;            ///< table_.size() - 1 (power of two)

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace small::cache
