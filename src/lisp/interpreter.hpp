// The Lisp interpreter.
//
// A dynamically scoped Lisp at the level of the thesis' compiler subset
// (§4.3.4): the list primitives (car, cdr, cons, rplaca, rplacd), cond and
// prog (with go and return), predicates, integer arithmetic, logic, setq,
// read/write, and def — plus lambda, let, progn and while for comfortable
// workload authoring. Exprs only (fixed arity, evaluated arguments), as in
// the thesis' simple Lisp.
//
// The interpreter drives the trace hook exactly where the thesis put it: at
// every call of a list access or modify primitive, and at entry/exit of
// every user-defined function.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lisp/env.hpp"
#include "lisp/tracer.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace small::obs {
class Registry;
}

namespace small::lisp {

enum class BindingDiscipline {
  kDeep,        ///< association-list scan (Fig 2.3)
  kShallow,     ///< oblist value cells + save stack (Fig 2.4)
  kCachedDeep,  ///< deep binding behind a FACOM-style value cache (Fig 2.5)
};

class Interpreter {
 public:
  struct Options {
    BindingDiscipline binding = BindingDiscipline::kDeep;
    std::uint64_t maxSteps = 100'000'000;  ///< eval-step budget per run()
  };

  Interpreter(sexpr::Arena& arena, sexpr::SymbolTable& symbols)
      : Interpreter(arena, symbols, Options{}) {}
  Interpreter(sexpr::Arena& arena, sexpr::SymbolTable& symbols,
              Options options);
  ~Interpreter();  // out of line: Syms is incomplete here

  /// Attach/detach the trace hook (may be null).
  void setTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Read every form in `source`; `def` forms register functions, all
  /// other forms evaluate in order. Returns the value of the last form.
  NodeRef run(std::string_view source);

  /// Evaluate a single already-read form.
  NodeRef eval(NodeRef form);

  /// Queue s-expressions for the `(read)` primitive to consume.
  void provideInput(NodeRef value) { input_.push_back(value); }
  void provideInputText(std::string_view text);

  /// Values emitted by `(write x)` / `(print x)`.
  const std::vector<NodeRef>& output() const { return output_; }
  void clearOutput() { output_.clear(); }

  Environment& environment() { return *env_; }
  sexpr::Arena& arena() { return arena_; }
  sexpr::SymbolTable& symbols() { return symbols_; }

  std::uint64_t stepsUsed() const { return steps_; }

  /// Number of user-defined functions registered.
  std::size_t functionCount() const { return functions_.size(); }

  /// Builtin dispatch tallies resolved to primitive names, sorted by
  /// name — the interpreter-side Fig 3.1 primitive-frequency mirror.
  std::vector<std::pair<std::string, std::uint64_t>> primitiveCounts() const;

  /// Publish eval-step and per-primitive dispatch counts into `registry`
  /// under the obs names ("lisp.eval_steps", "lisp.prim.<name>").
  void contributeObs(obs::Registry& registry) const;

 private:
  struct Function {
    std::string name;
    std::vector<SymbolId> params;
    std::vector<NodeRef> body;
  };

  // Non-local exits inside prog.
  struct GoSignal {
    SymbolId label;
  };
  struct ReturnSignal {
    NodeRef value;
  };

  NodeRef evalForm(NodeRef form);
  NodeRef evalCall(SymbolId head, NodeRef argForms);
  NodeRef applyFunction(const Function& function,
                        const std::vector<NodeRef>& args);
  NodeRef applyLambda(NodeRef lambda, const std::vector<NodeRef>& args);
  std::vector<NodeRef> evalArgs(NodeRef argForms);

  NodeRef evalCond(NodeRef clauses);
  NodeRef evalProg(NodeRef form);
  NodeRef evalSetq(NodeRef rest);
  NodeRef evalDef(NodeRef rest);
  NodeRef evalLet(NodeRef rest);
  NodeRef evalWhile(NodeRef rest);

  NodeRef applyBuiltin(SymbolId head, const std::vector<NodeRef>& args);

  NodeRef boolean(bool value);
  std::int64_t requireInt(NodeRef value, const char* what) const;
  void checkArity(const std::vector<NodeRef>& args, std::size_t arity,
                  const char* what) const;
  void countStep();

  [[noreturn]] void error(const std::string& message) const;

  sexpr::Arena& arena_;
  sexpr::SymbolTable& symbols_;
  Options options_;
  std::unique_ptr<Environment> env_;
  Tracer* tracer_ = nullptr;

  std::unordered_map<SymbolId, Function> functions_;
  std::deque<NodeRef> input_;
  std::vector<NodeRef> output_;
  std::uint64_t steps_ = 0;
  std::unordered_map<SymbolId, std::uint64_t> builtinDispatch_;

  // Interned special-form and builtin symbols, resolved once.
  struct Syms;
  std::unique_ptr<Syms> syms_;
};

}  // namespace small::lisp
