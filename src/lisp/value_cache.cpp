#include "lisp/value_cache.hpp"

#include "support/error.hpp"

namespace small::lisp {

ValueCachedDeepEnv::ValueCachedDeepEnv(std::size_t cacheEntries)
    : cache_(cacheEntries) {
  if (cacheEntries == 0) {
    throw support::Error("ValueCachedDeepEnv: zero cache entries");
  }
}

ValueCachedDeepEnv::CacheEntry& ValueCachedDeepEnv::slotFor(
    SymbolId name) const {
  // Direct-mapped stand-in for the Alpha's associative array.
  return cache_[name % cache_.size()];
}

void ValueCachedDeepEnv::invalidate(SymbolId name) {
  CacheEntry& slot = slotFor(name);
  if (slot.valid && slot.name == name) slot.valid = false;
}

void ValueCachedDeepEnv::pushFrame() { ++currentFrame_; }

void ValueCachedDeepEnv::popFrame() {
  // "On function return, the value cache is again searched, and all
  //  entries whose frame numbers are the same as that of the current
  //  function are invalidated."
  for (CacheEntry& slot : cache_) {
    if (slot.valid && slot.frame == currentFrame_) slot.valid = false;
  }
  if (currentFrame_ > 0) --currentFrame_;
}

void ValueCachedDeepEnv::bind(SymbolId name, NodeRef value) {
  stack_.push_back({name, value, currentFrame_});
  // The new binding shadows whatever the cache holds for this name.
  invalidate(name);
}

std::optional<NodeRef> ValueCachedDeepEnv::lookup(SymbolId name) const {
  CacheEntry& slot = slotFor(name);
  if (slot.valid && slot.name == name) {
    ++hits_;
    return slot.value;
  }
  ++misses_;
  // Fall back to the association-list scan, then install.
  for (std::size_t i = stack_.size(); i-- > 0;) {
    ++listScans_;
    if (stack_[i].name == name) {
      slot.valid = true;
      slot.name = name;
      slot.value = stack_[i].value;
      slot.frame = currentFrame_;
      return stack_[i].value;
    }
  }
  if (name < globals_.size() && globals_[name]) {
    slot.valid = true;
    slot.name = name;
    slot.value = *globals_[name];
    slot.frame = 0;  // top-level bindings are never re-bound below
    return globals_[name];
  }
  return std::nullopt;
}

void ValueCachedDeepEnv::assign(SymbolId name, NodeRef value) {
  for (std::size_t i = stack_.size(); i-- > 0;) {
    if (stack_[i].name == name) {
      stack_[i].value = value;
      invalidate(name);
      return;
    }
  }
  if (globals_.size() <= name) globals_.resize(name + 1);
  globals_[name] = value;
  invalidate(name);
}

void ValueCachedDeepEnv::unwindTo(Mark mark) {
  if (mark > stack_.size()) {
    throw support::Error("ValueCachedDeepEnv: unwind past top of stack");
  }
  while (stack_.size() > mark) {
    invalidate(stack_.back().name);
    stack_.pop_back();
  }
}

}  // namespace small::lisp
