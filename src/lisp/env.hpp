// Run-time environments: deep and shallow binding (§2.2.1, §2.3.2).
//
// The thesis describes the two classical implementations of a dynamically
// scoped Lisp environment:
//   * deep binding — an association list of name-value pairs searched from
//     its head; calls/returns are cheap, lookup may scan the stack;
//   * shallow binding — a value cell per name (the oblist) plus a stack of
//     shadowed bindings restored on return; lookup is O(1), calls pay for
//     the cell swaps.
// Both are provided behind one interface so the interpreter (and the
// micro-benchmarks contrasting them) can switch disciplines.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::lisp {

using sexpr::NodeRef;
using sexpr::SymbolId;

/// Abstract dynamic-binding environment.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Opaque restore point taken before a function call's bindings.
  using Mark = std::size_t;

  virtual Mark mark() const = 0;

  /// Add a binding for `name` in the current (innermost) context.
  virtual void bind(SymbolId name, NodeRef value) = 0;

  /// Most recent binding of `name`, or its global value, or nullopt.
  virtual std::optional<NodeRef> lookup(SymbolId name) const = 0;

  /// Assign to the most recent binding of `name`; creates/overwrites the
  /// global value if no dynamic binding exists (top-level setq).
  virtual void assign(SymbolId name, NodeRef value) = 0;

  /// Undo every binding made since `mark` (function return).
  virtual void unwindTo(Mark mark) = 0;

  /// Dynamic bindings currently live (excluding globals).
  virtual std::size_t depth() const = 0;

  /// Function-call brackets. Most disciplines ignore them; the value
  /// cache uses them for frame-tagged invalidation (Fig 2.5).
  virtual void enterFrame() {}
  virtual void exitFrame() {}
};

/// Deep binding: a linear binding stack searched from the top, as in
/// Fig 2.3, with a global table underneath for top-level values.
class DeepBindingEnv final : public Environment {
 public:
  Mark mark() const override { return stack_.size(); }
  void bind(SymbolId name, NodeRef value) override;
  std::optional<NodeRef> lookup(SymbolId name) const override;
  void assign(SymbolId name, NodeRef value) override;
  void unwindTo(Mark mark) override;
  std::size_t depth() const override { return stack_.size(); }

  /// Number of association-list items scanned by all lookups so far — the
  /// cost measure the thesis discusses for deep binding.
  std::uint64_t lookupScans() const { return lookupScans_; }

 private:
  struct Binding {
    SymbolId name;
    NodeRef value;
  };
  std::vector<Binding> stack_;
  std::vector<std::optional<NodeRef>> globals_;  // indexed by SymbolId
  mutable std::uint64_t lookupScans_ = 0;

  void ensureGlobalSlot(SymbolId name);
};

/// Shallow binding: one value cell per symbol (the oblist) and a stack of
/// displaced bindings, as in Fig 2.4.
class ShallowBindingEnv final : public Environment {
 public:
  Mark mark() const override { return saved_.size(); }
  void bind(SymbolId name, NodeRef value) override;
  std::optional<NodeRef> lookup(SymbolId name) const override;
  void assign(SymbolId name, NodeRef value) override;
  void unwindTo(Mark mark) override;
  std::size_t depth() const override { return saved_.size(); }

  /// Value-cell writes performed on calls and returns — the cost measure
  /// the thesis discusses for shallow binding.
  std::uint64_t cellWrites() const { return cellWrites_; }

 private:
  struct Saved {
    SymbolId name;
    std::optional<NodeRef> previous;
  };
  std::vector<std::optional<NodeRef>> cells_;  // indexed by SymbolId
  std::vector<Saved> saved_;
  std::uint64_t cellWrites_ = 0;

  void ensureCell(SymbolId name);
};

}  // namespace small::lisp
