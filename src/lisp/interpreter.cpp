#include "lisp/interpreter.hpp"

#include <algorithm>
#include <array>

#include "lisp/value_cache.hpp"
#include "obs/names.hpp"
#include "obs/registry.hpp"
#include "support/error.hpp"

namespace small::lisp {

using sexpr::NodeKind;
using sexpr::NodeRef;
using support::EvalError;
using trace::Primitive;

/// Interned ids for special forms and builtins.
struct Interpreter::Syms {
  SymbolId quote, cond, prog, go, ret, setq, def, defun, lambda, let, progn,
      whileSym, andSym, orSym, ifSym;
  SymbolId car, cdr, cons, rplaca, rplacd, atom, null, equal, append, read,
      write, print, list;
  SymbolId eq, notSym, plus, minus, times, quotient, remainder, eqNum, lt, gt,
      le, ge, zerop, numberp, listp, caar, cadr, cddr, cdar;
  SymbolId t;

  explicit Syms(sexpr::SymbolTable& symbols) {
    quote = symbols.intern("quote");
    cond = symbols.intern("cond");
    prog = symbols.intern("prog");
    go = symbols.intern("go");
    ret = symbols.intern("return");
    setq = symbols.intern("setq");
    def = symbols.intern("def");
    defun = symbols.intern("defun");
    lambda = symbols.intern("lambda");
    let = symbols.intern("let");
    progn = symbols.intern("progn");
    whileSym = symbols.intern("while");
    andSym = symbols.intern("and");
    orSym = symbols.intern("or");
    ifSym = symbols.intern("if");

    car = symbols.intern("car");
    cdr = symbols.intern("cdr");
    cons = symbols.intern("cons");
    rplaca = symbols.intern("rplaca");
    rplacd = symbols.intern("rplacd");
    atom = symbols.intern("atom");
    null = symbols.intern("null");
    equal = symbols.intern("equal");
    append = symbols.intern("append");
    read = symbols.intern("read");
    write = symbols.intern("write");
    print = symbols.intern("print");
    list = symbols.intern("list");

    eq = symbols.intern("eq");
    notSym = symbols.intern("not");
    plus = symbols.intern("+");
    minus = symbols.intern("-");
    times = symbols.intern("*");
    quotient = symbols.intern("/");
    remainder = symbols.intern("rem");
    eqNum = symbols.intern("=");
    lt = symbols.intern("<");
    gt = symbols.intern(">");
    le = symbols.intern("<=");
    ge = symbols.intern(">=");
    zerop = symbols.intern("zerop");
    numberp = symbols.intern("numberp");
    listp = symbols.intern("listp");
    caar = symbols.intern("caar");
    cadr = symbols.intern("cadr");
    cddr = symbols.intern("cddr");
    cdar = symbols.intern("cdar");

    t = sexpr::SymbolTable::kT;
  }
};

Interpreter::Interpreter(sexpr::Arena& arena, sexpr::SymbolTable& symbols,
                         Options options)
    : arena_(arena),
      symbols_(symbols),
      options_(options),
      syms_(std::make_unique<Syms>(symbols)) {
  switch (options_.binding) {
    case BindingDiscipline::kDeep:
      env_ = std::make_unique<DeepBindingEnv>();
      break;
    case BindingDiscipline::kShallow:
      env_ = std::make_unique<ShallowBindingEnv>();
      break;
    case BindingDiscipline::kCachedDeep:
      env_ = std::make_unique<ValueCachedDeepEnv>();
      break;
  }
}

Interpreter::~Interpreter() = default;

void Interpreter::error(const std::string& message) const {
  throw EvalError("lisp: " + message);
}

void Interpreter::countStep() {
  if (++steps_ > options_.maxSteps) {
    error("evaluation step budget exceeded");
  }
}

NodeRef Interpreter::boolean(bool value) {
  return value ? arena_.symbol(syms_->t) : sexpr::kNilRef;
}

std::int64_t Interpreter::requireInt(NodeRef value, const char* what) const {
  if (arena_.kind(value) != NodeKind::kInteger) {
    throw EvalError(std::string("lisp: ") + what + " expects integers");
  }
  return arena_.integerValue(value);
}

void Interpreter::checkArity(const std::vector<NodeRef>& args,
                             std::size_t arity, const char* what) const {
  if (args.size() != arity) {
    throw EvalError(std::string("lisp: ") + what + " expects " +
                    std::to_string(arity) + " argument(s), got " +
                    std::to_string(args.size()));
  }
}

void Interpreter::provideInputText(std::string_view text) {
  sexpr::Reader reader(arena_, symbols_);
  for (const NodeRef form : reader.readAll(text)) {
    input_.push_back(form);
  }
}

NodeRef Interpreter::run(std::string_view source) {
  sexpr::Reader reader(arena_, symbols_);
  NodeRef last = sexpr::kNilRef;
  for (const NodeRef form : reader.readAll(source)) {
    last = eval(form);
  }
  return last;
}

NodeRef Interpreter::eval(NodeRef form) { return evalForm(form); }

NodeRef Interpreter::evalForm(NodeRef form) {
  countStep();
  switch (arena_.kind(form)) {
    case NodeKind::kNil:
    case NodeKind::kInteger:
      return form;
    case NodeKind::kSymbol: {
      const SymbolId name = arena_.symbolId(form);
      if (name == syms_->t) return form;
      const std::optional<NodeRef> value = env_->lookup(name);
      if (!value) {
        error("unbound variable '" + symbols_.name(name) + "'");
      }
      return *value;
    }
    case NodeKind::kCons: {
      const NodeRef head = arena_.car(form);
      if (arena_.kind(head) != NodeKind::kSymbol) {
        // ((lambda (args) body) actual...) — direct lambda application.
        if (arena_.kind(head) == NodeKind::kCons &&
            arena_.kind(arena_.car(head)) == NodeKind::kSymbol &&
            arena_.symbolId(arena_.car(head)) == syms_->lambda) {
          return applyLambda(head, evalArgs(arena_.cdr(form)));
        }
        error("cannot apply non-symbol head");
      }
      return evalCall(arena_.symbolId(head), arena_.cdr(form));
    }
  }
  error("unreachable form kind");
}

std::vector<NodeRef> Interpreter::evalArgs(NodeRef argForms) {
  std::vector<NodeRef> args;
  NodeRef cursor = argForms;
  while (!arena_.isNil(cursor)) {
    args.push_back(evalForm(arena_.car(cursor)));
    cursor = arena_.cdr(cursor);
  }
  return args;
}

NodeRef Interpreter::evalCall(SymbolId head, NodeRef argForms) {
  const Syms& s = *syms_;
  // --- special forms ---
  if (head == s.quote) return arena_.car(argForms);
  if (head == s.cond) return evalCond(argForms);
  if (head == s.prog) return evalProg(argForms);
  if (head == s.setq) return evalSetq(argForms);
  if (head == s.def || head == s.defun) return evalDef(argForms);
  if (head == s.let) return evalLet(argForms);
  if (head == s.whileSym) return evalWhile(argForms);
  if (head == s.lambda) {
    // A lambda expression evaluates to itself (a funarg list).
    return arena_.cons(arena_.symbol(s.lambda), argForms);
  }
  if (head == s.progn) {
    NodeRef value = sexpr::kNilRef;
    for (NodeRef c = argForms; !arena_.isNil(c); c = arena_.cdr(c)) {
      value = evalForm(arena_.car(c));
    }
    return value;
  }
  if (head == s.ifSym) {
    const NodeRef test = evalForm(arena_.car(argForms));
    const NodeRef rest = arena_.cdr(argForms);
    if (!arena_.isNil(test)) return evalForm(arena_.car(rest));
    const NodeRef elseForms = arena_.cdr(rest);
    if (arena_.isNil(elseForms)) return sexpr::kNilRef;
    return evalForm(arena_.car(elseForms));
  }
  if (head == s.andSym) {
    NodeRef value = arena_.symbol(s.t);
    for (NodeRef c = argForms; !arena_.isNil(c); c = arena_.cdr(c)) {
      value = evalForm(arena_.car(c));
      if (arena_.isNil(value)) return sexpr::kNilRef;
    }
    return value;
  }
  if (head == s.orSym) {
    for (NodeRef c = argForms; !arena_.isNil(c); c = arena_.cdr(c)) {
      const NodeRef value = evalForm(arena_.car(c));
      if (!arena_.isNil(value)) return value;
    }
    return sexpr::kNilRef;
  }
  if (head == s.go) {
    throw GoSignal{arena_.symbolId(arena_.car(argForms))};
  }
  if (head == s.ret) {
    NodeRef value = sexpr::kNilRef;
    if (!arena_.isNil(argForms)) value = evalForm(arena_.car(argForms));
    throw ReturnSignal{value};
  }

  // --- user-defined function? ---
  const auto fn = functions_.find(head);
  if (fn != functions_.end()) {
    return applyFunction(fn->second, evalArgs(argForms));
  }

  // --- a variable bound to a lambda? (funargs) ---
  if (const std::optional<NodeRef> bound = env_->lookup(head)) {
    const NodeRef value = *bound;
    if (arena_.kind(value) == NodeKind::kCons &&
        arena_.kind(arena_.car(value)) == NodeKind::kSymbol &&
        arena_.symbolId(arena_.car(value)) == s.lambda) {
      return applyLambda(value, evalArgs(argForms));
    }
  }

  // --- builtin ---
  return applyBuiltin(head, evalArgs(argForms));
}

NodeRef Interpreter::evalCond(NodeRef clauses) {
  for (NodeRef c = clauses; !arena_.isNil(c); c = arena_.cdr(c)) {
    const NodeRef clause = arena_.car(c);
    const NodeRef test = evalForm(arena_.car(clause));
    if (arena_.isNil(test)) continue;
    NodeRef value = test;
    for (NodeRef body = arena_.cdr(clause); !arena_.isNil(body);
         body = arena_.cdr(body)) {
      value = evalForm(arena_.car(body));
    }
    return value;
  }
  return sexpr::kNilRef;
}

NodeRef Interpreter::evalProg(NodeRef form) {
  const Environment::Mark mark = env_->mark();
  // Bind locals to nil.
  for (NodeRef c = arena_.car(form); !arena_.isNil(c); c = arena_.cdr(c)) {
    env_->bind(arena_.symbolId(arena_.car(c)), sexpr::kNilRef);
  }
  // Collect body forms and label positions.
  std::vector<NodeRef> body;
  std::vector<std::pair<SymbolId, std::size_t>> labels;
  for (NodeRef c = arena_.cdr(form); !arena_.isNil(c); c = arena_.cdr(c)) {
    const NodeRef item = arena_.car(c);
    if (arena_.kind(item) == NodeKind::kSymbol) {
      labels.emplace_back(arena_.symbolId(item), body.size());
    } else {
      body.push_back(item);
    }
  }

  NodeRef result = sexpr::kNilRef;
  std::size_t pc = 0;
  std::uint64_t jumps = 0;
  try {
    while (pc < body.size()) {
      try {
        evalForm(body[pc]);
        ++pc;
      } catch (const GoSignal& signal) {
        if (++jumps > options_.maxSteps) error("prog: jump budget exceeded");
        bool found = false;
        for (const auto& [label, index] : labels) {
          if (label == signal.label) {
            pc = index;
            found = true;
            break;
          }
        }
        if (!found) throw;  // label in an enclosing prog
      }
    }
  } catch (const ReturnSignal& signal) {
    result = signal.value;
  }
  env_->unwindTo(mark);
  return result;
}

NodeRef Interpreter::evalSetq(NodeRef rest) {
  NodeRef value = sexpr::kNilRef;
  while (!arena_.isNil(rest)) {
    const NodeRef nameNode = arena_.car(rest);
    if (arena_.kind(nameNode) != NodeKind::kSymbol) {
      error("setq: variable name must be a symbol");
    }
    rest = arena_.cdr(rest);
    if (arena_.isNil(rest)) error("setq: missing value form");
    value = evalForm(arena_.car(rest));
    env_->assign(arena_.symbolId(nameNode), value);
    rest = arena_.cdr(rest);
  }
  return value;
}

NodeRef Interpreter::evalDef(NodeRef rest) {
  // (def name (lambda (params) body...))  — thesis style
  // (defun name (params) body...)         — sugar
  const NodeRef nameNode = arena_.car(rest);
  if (arena_.kind(nameNode) != NodeKind::kSymbol) {
    error("def: function name must be a symbol");
  }
  const SymbolId name = arena_.symbolId(nameNode);

  NodeRef params;
  NodeRef body;
  const NodeRef second = arena_.car(arena_.cdr(rest));
  if (arena_.kind(second) == NodeKind::kCons &&
      arena_.kind(arena_.car(second)) == NodeKind::kSymbol &&
      arena_.symbolId(arena_.car(second)) == syms_->lambda) {
    params = arena_.car(arena_.cdr(second));
    body = arena_.cdr(arena_.cdr(second));
  } else {
    params = second;
    body = arena_.cdr(arena_.cdr(rest));
  }

  Function function;
  function.name = symbols_.name(name);
  for (NodeRef c = params; !arena_.isNil(c); c = arena_.cdr(c)) {
    function.params.push_back(arena_.symbolId(arena_.car(c)));
  }
  for (NodeRef c = body; !arena_.isNil(c); c = arena_.cdr(c)) {
    function.body.push_back(arena_.car(c));
  }
  if (function.body.empty()) error("def: empty function body");
  functions_[name] = std::move(function);
  return nameNode;
}

NodeRef Interpreter::evalLet(NodeRef rest) {
  const Environment::Mark mark = env_->mark();
  for (NodeRef c = arena_.car(rest); !arena_.isNil(c); c = arena_.cdr(c)) {
    const NodeRef pair = arena_.car(c);
    const SymbolId name = arena_.symbolId(arena_.car(pair));
    const NodeRef value = evalForm(arena_.car(arena_.cdr(pair)));
    env_->bind(name, value);
  }
  NodeRef value = sexpr::kNilRef;
  for (NodeRef c = arena_.cdr(rest); !arena_.isNil(c); c = arena_.cdr(c)) {
    value = evalForm(arena_.car(c));
  }
  env_->unwindTo(mark);
  return value;
}

NodeRef Interpreter::evalWhile(NodeRef rest) {
  const NodeRef test = arena_.car(rest);
  const NodeRef body = arena_.cdr(rest);
  while (!arena_.isNil(evalForm(test))) {
    for (NodeRef c = body; !arena_.isNil(c); c = arena_.cdr(c)) {
      evalForm(arena_.car(c));
    }
  }
  return sexpr::kNilRef;
}

NodeRef Interpreter::applyFunction(const Function& function,
                                   const std::vector<NodeRef>& args) {
  if (args.size() != function.params.size()) {
    error("function '" + function.name + "' expects " +
          std::to_string(function.params.size()) + " argument(s), got " +
          std::to_string(args.size()));
  }
  if (tracer_) {
    tracer_->onFunctionEnter(function.name, static_cast<int>(args.size()));
  }
  const Environment::Mark mark = env_->mark();
  env_->enterFrame();
  for (std::size_t i = 0; i < args.size(); ++i) {
    env_->bind(function.params[i], args[i]);
  }
  NodeRef value = sexpr::kNilRef;
  try {
    for (const NodeRef form : function.body) {
      value = evalForm(form);
    }
  } catch (...) {
    env_->unwindTo(mark);
    env_->exitFrame();
    if (tracer_) tracer_->onFunctionExit(function.name);
    throw;
  }
  env_->unwindTo(mark);
  env_->exitFrame();
  if (tracer_) tracer_->onFunctionExit(function.name);
  return value;
}

NodeRef Interpreter::applyLambda(NodeRef lambda,
                                 const std::vector<NodeRef>& args) {
  Function function;
  function.name = "lambda";
  const NodeRef params = arena_.car(arena_.cdr(lambda));
  for (NodeRef c = params; !arena_.isNil(c); c = arena_.cdr(c)) {
    function.params.push_back(arena_.symbolId(arena_.car(c)));
  }
  for (NodeRef c = arena_.cdr(arena_.cdr(lambda)); !arena_.isNil(c);
       c = arena_.cdr(c)) {
    function.body.push_back(arena_.car(c));
  }
  if (function.body.empty()) error("lambda: empty body");
  return applyFunction(function, args);
}

NodeRef Interpreter::applyBuiltin(SymbolId head,
                                  const std::vector<NodeRef>& args) {
  const Syms& s = *syms_;
  ++builtinDispatch_[head];
  auto tracePrim = [&](Primitive primitive, NodeRef result) {
    if (tracer_) {
      tracer_->onPrimitive(primitive,
                           std::span<const NodeRef>(args.data(), args.size()),
                           result);
    }
    return result;
  };
  auto traceWith = [&](Primitive primitive, std::span<const NodeRef> in,
                       NodeRef result) {
    if (tracer_) tracer_->onPrimitive(primitive, in, result);
    return result;
  };

  // --- traced list primitives ---
  if (head == s.car) {
    checkArity(args, 1, "car");
    return tracePrim(Primitive::kCar, arena_.car(args[0]));
  }
  if (head == s.cdr) {
    checkArity(args, 1, "cdr");
    return tracePrim(Primitive::kCdr, arena_.cdr(args[0]));
  }
  // CxR compositions trace as their constituent primitive chain, exactly as
  // an interpreter built on car/cdr would.
  if (head == s.caar || head == s.cadr || head == s.cddr || head == s.cdar) {
    checkArity(args, 1, "cxr");
    const bool innerCar = (head == s.caar || head == s.cadr) ? false : false;
    (void)innerCar;
    NodeRef inner;
    Primitive innerOp;
    Primitive outerOp;
    if (head == s.caar) {
      innerOp = Primitive::kCar;
      outerOp = Primitive::kCar;
    } else if (head == s.cadr) {
      innerOp = Primitive::kCdr;
      outerOp = Primitive::kCar;
    } else if (head == s.cddr) {
      innerOp = Primitive::kCdr;
      outerOp = Primitive::kCdr;
    } else {  // cdar
      innerOp = Primitive::kCar;
      outerOp = Primitive::kCdr;
    }
    inner = innerOp == Primitive::kCar ? arena_.car(args[0])
                                       : arena_.cdr(args[0]);
    traceWith(innerOp, std::span<const NodeRef>(args.data(), 1), inner);
    const NodeRef outer =
        outerOp == Primitive::kCar ? arena_.car(inner) : arena_.cdr(inner);
    const std::array<NodeRef, 1> innerArgs = {inner};
    return traceWith(outerOp,
                     std::span<const NodeRef>(innerArgs.data(), 1), outer);
  }
  if (head == s.cons) {
    checkArity(args, 2, "cons");
    return tracePrim(Primitive::kCons, arena_.cons(args[0], args[1]));
  }
  if (head == s.rplaca) {
    checkArity(args, 2, "rplaca");
    arena_.setCar(args[0], args[1]);
    return tracePrim(Primitive::kRplaca, args[0]);
  }
  if (head == s.rplacd) {
    checkArity(args, 2, "rplacd");
    arena_.setCdr(args[0], args[1]);
    return tracePrim(Primitive::kRplacd, args[0]);
  }
  // Predicates are *not* traced: the thesis instrumented "list access or
  // modify" functions, and Fig 3.1's "other" bucket stays under 10%.
  if (head == s.atom) {
    checkArity(args, 1, "atom");
    return boolean(arena_.isAtom(args[0]));
  }
  if (head == s.null) {
    checkArity(args, 1, "null");
    return boolean(arena_.isNil(args[0]));
  }
  if (head == s.equal) {
    checkArity(args, 2, "equal");
    return boolean(arena_.equal(args[0], args[1]));
  }
  if (head == s.append) {
    checkArity(args, 2, "append");
    // Copy the first list's spine; share the second.
    std::vector<NodeRef> spine;
    for (NodeRef c = args[0]; !arena_.isNil(c); c = arena_.cdr(c)) {
      if (arena_.isAtom(c)) error("append: first argument not a list");
      spine.push_back(arena_.car(c));
    }
    NodeRef result = args[1];
    for (std::size_t i = spine.size(); i-- > 0;) {
      result = arena_.cons(spine[i], result);
    }
    return tracePrim(Primitive::kAppend, result);
  }
  if (head == s.read) {
    checkArity(args, 0, "read");
    NodeRef value = sexpr::kNilRef;
    if (!input_.empty()) {
      value = input_.front();
      input_.pop_front();
    }
    return tracePrim(Primitive::kRead, value);
  }
  if (head == s.write || head == s.print) {
    checkArity(args, 1, "write");
    output_.push_back(args[0]);
    return tracePrim(Primitive::kWrite, args[0]);
  }
  if (head == s.list) {
    NodeRef result = sexpr::kNilRef;
    for (std::size_t i = args.size(); i-- > 0;) {
      const NodeRef next = arena_.cons(args[i], result);
      const std::array<NodeRef, 2> consArgs = {args[i], result};
      traceWith(Primitive::kCons,
                std::span<const NodeRef>(consArgs.data(), 2), next);
      result = next;
    }
    return result;
  }

  // --- untraced builtins ---
  if (head == s.eq) {
    checkArity(args, 2, "eq");
    const bool same =
        args[0] == args[1] ||
        (arena_.kind(args[0]) == NodeKind::kInteger &&
         arena_.kind(args[1]) == NodeKind::kInteger &&
         arena_.integerValue(args[0]) == arena_.integerValue(args[1])) ||
        (arena_.kind(args[0]) == NodeKind::kSymbol &&
         arena_.kind(args[1]) == NodeKind::kSymbol &&
         arena_.symbolId(args[0]) == arena_.symbolId(args[1]));
    return boolean(same);
  }
  if (head == s.notSym) {
    checkArity(args, 1, "not");
    return boolean(arena_.isNil(args[0]));
  }
  if (head == s.plus || head == s.minus || head == s.times ||
      head == s.quotient || head == s.remainder) {
    if (args.empty()) error("arithmetic on no arguments");
    std::int64_t acc = requireInt(args[0], "arithmetic");
    if (head == s.minus && args.size() == 1) return arena_.integer(-acc);
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::int64_t value = requireInt(args[i], "arithmetic");
      if (head == s.plus) {
        acc += value;
      } else if (head == s.minus) {
        acc -= value;
      } else if (head == s.times) {
        acc *= value;
      } else if (value == 0) {
        error("division by zero");
      } else if (head == s.quotient) {
        acc /= value;
      } else {
        acc %= value;
      }
    }
    return arena_.integer(acc);
  }
  if (head == s.eqNum || head == s.lt || head == s.gt || head == s.le ||
      head == s.ge) {
    checkArity(args, 2, "comparison");
    const std::int64_t a = requireInt(args[0], "comparison");
    const std::int64_t b = requireInt(args[1], "comparison");
    bool value = false;
    if (head == s.eqNum) value = a == b;
    if (head == s.lt) value = a < b;
    if (head == s.gt) value = a > b;
    if (head == s.le) value = a <= b;
    if (head == s.ge) value = a >= b;
    return boolean(value);
  }
  if (head == s.zerop) {
    checkArity(args, 1, "zerop");
    return boolean(arena_.kind(args[0]) == NodeKind::kInteger &&
                   arena_.integerValue(args[0]) == 0);
  }
  if (head == s.numberp) {
    checkArity(args, 1, "numberp");
    return boolean(arena_.kind(args[0]) == NodeKind::kInteger);
  }
  if (head == s.listp) {
    checkArity(args, 1, "listp");
    return boolean(arena_.kind(args[0]) == NodeKind::kCons ||
                   arena_.isNil(args[0]));
  }

  error("undefined function '" + symbols_.name(head) + "'");
}

std::vector<std::pair<std::string, std::uint64_t>>
Interpreter::primitiveCounts() const {
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  counts.reserve(builtinDispatch_.size());
  for (const auto& [symbol, count] : builtinDispatch_) {
    counts.emplace_back(symbols_.name(symbol), count);
  }
  std::sort(counts.begin(), counts.end());
  return counts;
}

void Interpreter::contributeObs(obs::Registry& registry) const {
  registry.add(obs::names::kLispSteps, steps_);
  for (const auto& [name, count] : primitiveCounts()) {
    registry.add(std::string(obs::names::kLispPrimPrefix) + name, count);
  }
}

}  // namespace small::lisp
