// The interpreter's trace hook (§3.3.1).
//
// "The programs were run on a Franz Lisp interpreter modified such that on
//  the call of a list access or modify function, the function name and its
//  arguments (in s-expression form) were written to a trace file."
//
// `Tracer` is that hook; `TraceRecorder` is the standard implementation
// that fingerprints arguments/results and appends `trace::Event`s.
#pragma once

#include <span>
#include <string_view>

#include "sexpr/arena.hpp"
#include "trace/trace.hpp"

namespace small::lisp {

class Tracer {
 public:
  virtual ~Tracer() = default;

  virtual void onPrimitive(trace::Primitive primitive,
                           std::span<const sexpr::NodeRef> args,
                           sexpr::NodeRef result) = 0;
  virtual void onFunctionEnter(std::string_view name, int argCount) = 0;
  virtual void onFunctionExit(std::string_view name) = 0;
};

/// Records a `trace::Trace` by fingerprinting every traced argument and
/// result at call time.
class TraceRecorder final : public Tracer {
 public:
  TraceRecorder(const sexpr::Arena& arena, trace::Trace& out)
      : arena_(arena), out_(out) {}

  void onPrimitive(trace::Primitive primitive,
                   std::span<const sexpr::NodeRef> args,
                   sexpr::NodeRef result) override;
  void onFunctionEnter(std::string_view name, int argCount) override;
  void onFunctionExit(std::string_view name) override;

 private:
  trace::ObjectRecord record(sexpr::NodeRef ref) const;

  const sexpr::Arena& arena_;
  trace::Trace& out_;
};

}  // namespace small::lisp
