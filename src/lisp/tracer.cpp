#include "lisp/tracer.hpp"

#include "sexpr/metrics.hpp"

namespace small::lisp {

trace::ObjectRecord TraceRecorder::record(sexpr::NodeRef ref) const {
  trace::ObjectRecord rec;
  if (arena_.kind(ref) == sexpr::NodeKind::kCons) {
    rec.isList = true;
    rec.fingerprint = sexpr::structuralHash(arena_, ref);
    const sexpr::ListShape shape = sexpr::measureShape(arena_, ref);
    rec.n = static_cast<std::uint32_t>(shape.n);
    rec.p = static_cast<std::uint32_t>(shape.p);
  }
  return rec;
}

void TraceRecorder::onPrimitive(trace::Primitive primitive,
                                std::span<const sexpr::NodeRef> args,
                                sexpr::NodeRef result) {
  trace::Event event;
  event.kind = trace::EventKind::kPrimitive;
  event.primitive = primitive;
  event.args.reserve(args.size());
  for (const sexpr::NodeRef arg : args) {
    event.args.push_back(record(arg));
  }
  event.result = record(result);
  out_.append(std::move(event));
}

void TraceRecorder::onFunctionEnter(std::string_view name, int argCount) {
  trace::Event event;
  event.kind = trace::EventKind::kFunctionEnter;
  event.functionId = out_.internFunction(name);
  event.argCount = static_cast<std::uint8_t>(argCount);
  out_.append(std::move(event));
}

void TraceRecorder::onFunctionExit(std::string_view name) {
  trace::Event event;
  event.kind = trace::EventKind::kFunctionExit;
  event.functionId = out_.internFunction(name);
  out_.append(std::move(event));
}

}  // namespace small::lisp
