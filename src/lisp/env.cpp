#include "lisp/env.hpp"

#include "support/error.hpp"

namespace small::lisp {

void DeepBindingEnv::ensureGlobalSlot(SymbolId name) {
  if (globals_.size() <= name) globals_.resize(name + 1);
}

void DeepBindingEnv::bind(SymbolId name, NodeRef value) {
  stack_.push_back({name, value});
}

std::optional<NodeRef> DeepBindingEnv::lookup(SymbolId name) const {
  for (std::size_t i = stack_.size(); i-- > 0;) {
    ++lookupScans_;
    if (stack_[i].name == name) return stack_[i].value;
  }
  if (name < globals_.size()) return globals_[name];
  return std::nullopt;
}

void DeepBindingEnv::assign(SymbolId name, NodeRef value) {
  for (std::size_t i = stack_.size(); i-- > 0;) {
    if (stack_[i].name == name) {
      stack_[i].value = value;
      return;
    }
  }
  ensureGlobalSlot(name);
  globals_[name] = value;
}

void DeepBindingEnv::unwindTo(Mark mark) {
  if (mark > stack_.size()) {
    throw support::Error("DeepBindingEnv: unwind past top of stack");
  }
  stack_.resize(mark);
}

void ShallowBindingEnv::ensureCell(SymbolId name) {
  if (cells_.size() <= name) cells_.resize(name + 1);
}

void ShallowBindingEnv::bind(SymbolId name, NodeRef value) {
  ensureCell(name);
  saved_.push_back({name, cells_[name]});
  cells_[name] = value;
  ++cellWrites_;
}

std::optional<NodeRef> ShallowBindingEnv::lookup(SymbolId name) const {
  if (name < cells_.size()) return cells_[name];
  return std::nullopt;
}

void ShallowBindingEnv::assign(SymbolId name, NodeRef value) {
  ensureCell(name);
  cells_[name] = value;
  ++cellWrites_;
}

void ShallowBindingEnv::unwindTo(Mark mark) {
  if (mark > saved_.size()) {
    throw support::Error("ShallowBindingEnv: unwind past top of stack");
  }
  while (saved_.size() > mark) {
    const Saved& saved = saved_.back();
    cells_[saved.name] = saved.previous;
    ++cellWrites_;
    saved_.pop_back();
  }
}

}  // namespace small::lisp
