// A value-cached deep-binding environment, after the FACOM Alpha
// (§2.3.2, Fig 2.5).
//
// "The value cache is an associative memory device that is searched
//  before the association list during the lookup process... Each value
//  cache entry is made up of a valid bit, a stack frame number..., and
//  fields for the variable name and value binding."
//
// On a call the cache entries for the callee's bound names are
// invalidated; a lookup miss falls back to the association-list scan and
// installs the result; on return every entry tagged with the returning
// frame is invalidated. This sits between plain deep binding (cheap
// calls, expensive lookups) and shallow binding (the reverse), and the
// `micro_interpreter` bench measures all three.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lisp/env.hpp"

namespace small::lisp {

class ValueCachedDeepEnv final : public Environment {
 public:
  explicit ValueCachedDeepEnv(std::size_t cacheEntries = 64);

  Mark mark() const override { return stack_.size(); }
  void bind(SymbolId name, NodeRef value) override;
  std::optional<NodeRef> lookup(SymbolId name) const override;
  void assign(SymbolId name, NodeRef value) override;
  void unwindTo(Mark mark) override;
  std::size_t depth() const override { return stack_.size(); }

  // --- cost accounting for the §2.3.2 comparison ---
  std::uint64_t cacheHits() const { return hits_; }
  std::uint64_t cacheMisses() const { return misses_; }
  std::uint64_t listScans() const { return listScans_; }

  /// Frame bookkeeping: the interpreter (or a test) brackets each call.
  /// bind() inside the frame invalidates the bound name's cache entry;
  /// popFrame() invalidates everything the frame installed.
  void pushFrame();
  void popFrame();

  void enterFrame() override { pushFrame(); }
  void exitFrame() override { popFrame(); }

 private:
  struct Binding {
    SymbolId name;
    NodeRef value;
    std::uint32_t frame;
  };
  struct CacheEntry {
    bool valid = false;
    SymbolId name = 0;
    NodeRef value = 0;
    std::uint32_t frame = 0;
  };

  CacheEntry& slotFor(SymbolId name) const;
  void invalidate(SymbolId name);

  std::vector<Binding> stack_;
  std::vector<std::optional<NodeRef>> globals_;
  mutable std::vector<CacheEntry> cache_;
  std::uint32_t currentFrame_ = 0;

  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  mutable std::uint64_t listScans_ = 0;
};

}  // namespace small::lisp
