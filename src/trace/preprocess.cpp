#include "trace/preprocess.hpp"

#include <algorithm>

#include "trace/binary.hpp"

namespace small::trace {

TraceContent PreprocessedTrace::content() const {
  TraceContent content{};
  std::uint32_t depth = 0;
  for (const PreprocessedEvent& event : events) {
    switch (event.kind) {
      case EventKind::kPrimitive:
        ++content.primitiveCalls;
        break;
      case EventKind::kFunctionEnter:
        ++content.functionCalls;
        ++depth;
        content.maxCallDepth = std::max(content.maxCallDepth, depth);
        break;
      case EventKind::kFunctionExit:
        if (depth > 0) {
          --depth;
        } else {
          ++content.unbalancedExits;
        }
        break;
    }
  }
  return content;
}

PreprocessedObject Preprocessor::resolve(const ObjectRecord& record) {
  PreprocessedObject object;
  object.n = record.n;
  object.p = record.p;
  if (!record.isList) return object;  // atoms carry no identifier
  const auto [it, inserted] = idByFingerprint_.try_emplace(
      record.fingerprint,
      static_cast<std::uint32_t>(idByFingerprint_.size()));
  object.id = it->second;
  (void)inserted;
  return object;
}

void Preprocessor::process(const Event& event, PreprocessedEvent& out) {
  out.kind = event.kind;
  out.functionId = event.functionId;
  out.argCount = event.argCount;
  out.args.clear();
  out.result = PreprocessedObject{};
  if (event.kind != EventKind::kPrimitive) return;

  out.primitive = event.primitive;
  out.args.reserve(event.args.size());
  for (const ObjectRecord& arg : event.args) {
    PreprocessedObject object = resolve(arg);
    if (arg.isList && havePreviousResult_ &&
        arg.fingerprint == previousResult_) {
      object.chained = true;
    }
    out.args.push_back(object);
  }
  out.result = resolve(event.result);
  havePreviousResult_ = event.result.isList;
  previousResult_ = event.result.fingerprint;
  ++primitiveCount_;
}

PreprocessedTrace preprocess(const Trace& trace) {
  PreprocessedTrace out;
  out.name = trace.name;
  Preprocessor pre;
  out.events.resize(trace.events().size());
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    pre.process(trace.events()[i], out.events[i]);
  }
  out.uniqueListCount = pre.uniqueListCount();
  out.primitiveCount = pre.primitiveCount();
  return out;
}

PreprocessedTrace preprocessMapped(const MappedTrace& mapped) {
  PreprocessedTrace out;
  out.name = mapped.traceName();
  Preprocessor pre;
  out.events.reserve(static_cast<std::size_t>(mapped.recordCount()));
  BinaryDecoder decoder(mapped);
  std::vector<Event> batch(1024);
  for (std::size_t k = decoder.decodeBatch(batch); k != 0;
       k = decoder.decodeBatch(batch)) {
    for (std::size_t i = 0; i < k; ++i) {
      PreprocessedEvent& slot = out.events.emplace_back();
      pre.process(batch[i], slot);
    }
  }
  out.uniqueListCount = pre.uniqueListCount();
  out.primitiveCount = pre.primitiveCount();
  return out;
}

}  // namespace small::trace
