#include "trace/preprocess.hpp"

#include <algorithm>
#include <unordered_map>

namespace small::trace {

TraceContent PreprocessedTrace::content() const {
  TraceContent content{};
  std::uint32_t depth = 0;
  for (const PreprocessedEvent& event : events) {
    switch (event.kind) {
      case EventKind::kPrimitive:
        ++content.primitiveCalls;
        break;
      case EventKind::kFunctionEnter:
        ++content.functionCalls;
        ++depth;
        content.maxCallDepth = std::max(content.maxCallDepth, depth);
        break;
      case EventKind::kFunctionExit:
        if (depth > 0) {
          --depth;
        } else {
          ++content.unbalancedExits;
        }
        break;
    }
  }
  return content;
}

PreprocessedTrace preprocess(const Trace& trace) {
  PreprocessedTrace out;
  out.name = trace.name;

  std::unordered_map<std::uint64_t, std::uint32_t> idByFingerprint;
  auto resolve = [&](const ObjectRecord& record) {
    PreprocessedObject object;
    object.n = record.n;
    object.p = record.p;
    if (!record.isList) return object;  // atoms carry no identifier
    const auto [it, inserted] = idByFingerprint.try_emplace(
        record.fingerprint,
        static_cast<std::uint32_t>(idByFingerprint.size()));
    object.id = it->second;
    (void)inserted;
    return object;
  };

  // Fingerprint of the previous primitive call's return value; the chaining
  // flag compares against it. Function enter/exit events do not interrupt a
  // chain (the thesis notes chained calls "might actually be separated by
  // several function calls" — what matters is that no list creation or
  // modification intervened, which holds because any such operation is
  // itself a traced primitive).
  std::uint64_t previousResult = 0;
  bool havePreviousResult = false;

  out.events.reserve(trace.events().size());
  for (const Event& event : trace.events()) {
    PreprocessedEvent pre;
    pre.kind = event.kind;
    pre.functionId = event.functionId;
    pre.argCount = event.argCount;
    if (event.kind == EventKind::kPrimitive) {
      pre.primitive = event.primitive;
      pre.args.reserve(event.args.size());
      for (const ObjectRecord& arg : event.args) {
        PreprocessedObject object = resolve(arg);
        if (arg.isList && havePreviousResult &&
            arg.fingerprint == previousResult) {
          object.chained = true;
        }
        pre.args.push_back(object);
      }
      pre.result = resolve(event.result);
      havePreviousResult = event.result.isList;
      previousResult = event.result.fingerprint;
      ++out.primitiveCount;
    }
    out.events.push_back(std::move(pre));
  }
  out.uniqueListCount = static_cast<std::uint32_t>(idByFingerprint.size());
  return out;
}

}  // namespace small::trace
