// Text serialization of raw traces.
//
// One record per line:
//   P <primitive> <result> <arg>...     where an object is fp:n:p:l
//   E <functionName> <argCount>         function enter
//   X <functionName>                    function exit
// A `# name <label>` header carries the workload name.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace small::trace {

void save(const Trace& trace, std::ostream& out);
Trace load(std::istream& in);

void saveFile(const Trace& trace, const std::string& path);
Trace loadFile(const std::string& path);

}  // namespace small::trace
