// Text serialization of raw traces, and the format-dispatching file API.
//
// One record per line:
//   P <primitive> <result> <arg>...     where an object is fp:n:p:l
//   E <functionName> <argCount>         function enter
//   X <functionName>                    function exit
// A `# name <label>` header carries the workload name.
//
// loadFile() sniffs the first bytes: files starting with the `SMTR` magic
// take the mmap-backed binary path (trace/binary.hpp), everything else is
// parsed as text. saveFile() writes the requested FileFormat (text by
// default). Both formats are lossless mirrors: text -> binary -> text is
// byte-identical.
//
// Every error raised through the file API carries the file path; an
// empty file is reported distinctly (never silently loaded as an empty
// trace).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace small::trace {

/// On-disk trace representations understood by saveFile/loadFile.
enum class FileFormat {
  kText,    ///< line-oriented archival format (this header)
  kBinary,  ///< mmap-able SMTR format (trace/binary.hpp)
};

const char* fileFormatName(FileFormat format);

void save(const Trace& trace, std::ostream& out);
Trace load(std::istream& in);

/// Streaming text emission: save() is exactly saveTextHeader() followed
/// by saveTextEvent() per event, so a generator that cannot hold a Trace
/// (tools/trace_gen at 10^8+ primitives) can still produce the identical
/// text bytes. `functionName` is the un-escaped interned name for
/// function enter/exit events (ignored for primitives).
void saveTextHeader(std::ostream& out, const std::string& traceName);
void saveTextEvent(std::ostream& out, const Event& event,
                   const std::string& functionName);

void saveFile(const Trace& trace, const std::string& path,
              FileFormat format = FileFormat::kText);
Trace loadFile(const std::string& path);

/// The format loadFile() would pick for `path`: kBinary when the file
/// starts with the SMTR magic, kText otherwise. Throws support::Error
/// (with the path) when the file is missing, unreadable, or empty.
FileFormat sniffFileFormat(const std::string& path);

}  // namespace small::trace
