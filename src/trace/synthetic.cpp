#include "trace/synthetic.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "support/distributions.hpp"
#include "support/error.hpp"

namespace small::trace {

namespace {

using support::EmpiricalDistribution;
using support::Rng;

/// A synthetic list object: shape plus memoized car/cdr derivations so that
/// repeated access to the same object is structurally consistent.
struct SyntheticObject {
  std::uint64_t fp = 0;
  std::uint32_t n = 0;
  std::uint32_t p = 0;
  bool isList = true;

  // Memoized decomposition. 0 means "not derived yet"; fingerprints are
  // allocated from 1.
  bool decomposed = false;
  bool firstIsAtom = true;
  std::uint32_t subN = 0;  ///< shape of the first element when it is a list
  std::uint32_t subP = 0;
  std::uint64_t carChild = 0;
  std::uint64_t cdrChild = 0;
};

/// A locale: a family of related references rooted at one object, the
/// generator's unit of structural locality.
struct Locale {
  std::uint64_t rootFp = 0;
  std::deque<std::uint64_t> recent;  ///< recently touched members
  bool isCore = false;
};

class Generator {
 public:
  Generator(const WorkloadProfile& profile, Rng& rng)
      : profile_(profile),
        rng_(rng),
        // Root shapes are sampled above the target mean because derived
        // children shrink. Cons-heavy profiles still overshoot the
        // measured argument means (a cons's shape is the sum of its
        // operands', so accumulators snowball); that residual deviation
        // is recorded in EXPERIMENTS.md rather than fought with unstable
        // compensation terms.
        rootN_(support::makeGeometricTail(
            meanToRatio(profile.meanN * 1.35), 512)),
        rootP_(support::makeGeometricTail(
            meanToRatio(profile.meanP * 1.25 + 1.0), 256)) {}

  Trace run() {
    Trace trace;
    trace.name = profile_.name;
    // Seed the core locales with read-in lists.
    for (std::uint32_t i = 0; i < profile_.coreLocales; ++i) {
      emitRead(trace, /*core=*/true);
    }
    if (locales_.empty()) {
      throw support::Error("synthetic: no locales created");
    }
    currentLocale_ = 0;

    // emitPrimitive may add a second primitive (a locale-switch read), so
    // count through the shared emitted_ counter and leave headroom.
    while (emitted_ < profile_.primitiveCalls) {
      maybeFunctionEvents(trace);
      emitPrimitive(trace,
                    /*allowNewLocale=*/emitted_ + 2 <=
                        profile_.primitiveCalls);
    }
    // Unwind any open function calls so the trace is balanced.
    while (!callStack_.empty()) {
      Event exit;
      exit.kind = EventKind::kFunctionExit;
      exit.functionId = callStack_.back();
      callStack_.pop_back();
      trace.append(std::move(exit));
    }
    return trace;
  }

 private:
  static double meanToRatio(double mean) {
    // Geometric over {1,2,...} with success prob q has mean 1/q; the tail
    // ratio is 1-q. Clamp to a sane range.
    const double q = 1.0 / std::max(1.05, mean);
    return std::clamp(1.0 - q, 0.05, 0.995);
  }

  SyntheticObject& object(std::uint64_t fp) { return objects_.at(fp); }

  std::uint64_t newObject(std::uint32_t n, std::uint32_t p, bool isList) {
    const std::uint64_t fp = nextFp_++;
    SyntheticObject obj;
    obj.fp = fp;
    obj.n = n;
    obj.p = p;
    obj.isList = isList;
    objects_.emplace(fp, obj);
    return fp;
  }

  ObjectRecord record(std::uint64_t fp) {
    if (fp == 0) return ObjectRecord{};  // atom placeholder
    const SyntheticObject& obj = object(fp);
    ObjectRecord rec;
    rec.fingerprint = obj.fp;
    rec.n = obj.n;
    rec.p = obj.p;
    rec.isList = obj.isList;
    return rec;
  }

  /// Ensure the object's first-element decision and child shapes exist.
  void decompose(SyntheticObject& obj) {
    if (obj.decomposed) return;
    obj.decomposed = true;
    const std::uint32_t weight = obj.n + obj.p;
    if (weight == 0) {
      obj.firstIsAtom = true;
      return;
    }
    // The first element is a sublist with probability p/(n+p).
    obj.firstIsAtom =
        rng_.below(weight) < obj.n || obj.p == 0;
    if (!obj.firstIsAtom) {
      // Carve a sublist out of the parent's shape.
      obj.subP = static_cast<std::uint32_t>(rng_.below(obj.p));
      const std::uint32_t maxSubN = std::max<std::uint32_t>(obj.n, 1);
      obj.subN = 1 + static_cast<std::uint32_t>(
                         rng_.below(std::max<std::uint32_t>(maxSubN / 2, 1)));
      obj.subN = std::min(obj.subN, obj.n);
    }
  }

  /// The car of `fp`: memoized; may be an atom (returns 0). When
  /// `preferList` is set and the object is not yet decomposed, the first
  /// element is forced to be a sublist — used by chain planning so an
  /// intended chain has a list result to hang off.
  std::uint64_t carOf(std::uint64_t fp, bool preferList = false) {
    {
      SyntheticObject& obj = object(fp);
      if (obj.carChild != 0) return obj.carChild;
      if (!obj.decomposed && preferList && obj.n >= 2 && obj.p >= 1) {
        obj.decomposed = true;
        obj.firstIsAtom = false;
        // Forced sublists stay modest, or the chain-planning bias would
        // inflate the measured n/p means far past Table 3.1's.
        obj.subP = static_cast<std::uint32_t>(
            rng_.below(std::min<std::uint32_t>(obj.p, 3)));
        obj.subN = 1 + static_cast<std::uint32_t>(rng_.below(
                           std::max<std::uint32_t>(
                               std::min<std::uint32_t>(obj.n / 2, 8), 1)));
        obj.subN = std::min(obj.subN, obj.n);
      }
      decompose(obj);
      if (obj.firstIsAtom) return 0;  // atom result
    }
    // newObject may rehash objects_, so re-resolve after allocation.
    const std::uint32_t subN = object(fp).subN;
    const std::uint32_t subP = object(fp).subP;
    const std::uint64_t child = newObject(subN, subP, true);
    object(fp).carChild = child;
    return child;
  }

  /// The cdr of `fp`: memoized; nil (atom, returns 0) when exhausted.
  std::uint64_t cdrOf(std::uint64_t fp) {
    std::uint32_t n = 0;
    std::uint32_t p = 0;
    {
      SyntheticObject& obj = object(fp);
      if (obj.cdrChild != 0) return obj.cdrChild;
      decompose(obj);
      n = obj.n;
      p = obj.p;
      if (obj.firstIsAtom) {
        if (n == 0) return 0;
        n -= 1;
      } else {
        n -= std::min(n, obj.subN);
        p -= std::min(p, obj.subP + 1);
      }
    }
    if (n + p == 0) return 0;  // rest is nil
    const std::uint64_t child = newObject(n, p, true);
    object(fp).cdrChild = child;
    return child;
  }

  Locale& locale() { return locales_[currentLocale_]; }

  void touchLocale(std::uint64_t fp) {
    Locale& loc = locale();
    loc.recent.push_back(fp);
    if (loc.recent.size() > 32) loc.recent.pop_front();
    // Maintain the locale LRU order for core-switch selection.
    const auto it = std::ranges::find(localeLru_, currentLocale_);
    if (it != localeLru_.end()) localeLru_.erase(it);
    localeLru_.push_back(currentLocale_);
  }

  void maybeSwitchLocale(Trace& trace, bool allowNewLocale) {
    if (rng_.chance(profile_.stayProb)) return;
    if ((!allowNewLocale || rng_.chance(profile_.coreSwitchProb)) &&
        profile_.coreLocales > 0) {
      // Return to a uniformly chosen *core* locale — the program's
      // long-lived working structures (the seeding made cores the first
      // coreLocales entries). Uniform choice, rather than LRU-biased,
      // spreads references across the whole core set so the Fig 3.7
      // stack-depth distribution has mass beyond the top few sets.
      currentLocale_ = rng_.below(profile_.coreLocales);
    } else {
      emitRead(trace, /*core=*/false);
      return;  // emitRead already switched and reset the chain
    }
    // A working-set change breaks the primitive chain: the previous
    // result belongs to the locale we just left, and chaining across the
    // switch would structurally merge unrelated locales.
    lastResult_ = 0;
  }

  /// Pick a member of the current locale, preferring recent ones; `avoid`
  /// (when nonzero) is skipped if any alternative exists — the generator
  /// uses it to keep *unintended* chains off the books, so that the
  /// measured chaining rate tracks the profile's.
  std::uint64_t pickFromLocale(std::uint64_t avoid = 0) {
    Locale& loc = locale();
    std::uint64_t candidate;
    if (!loc.recent.empty() && rng_.chance(0.8)) {
      // Mostly the most recent members.
      std::size_t back = 0;
      while (back + 1 < loc.recent.size() && rng_.chance(0.45)) ++back;
      candidate = loc.recent[loc.recent.size() - 1 - back];
    } else {
      candidate = loc.rootFp;
    }
    if (candidate != avoid) return candidate;
    // Deterministic avoidance: the most recent member that differs, else
    // the root. Never reach into another locale — that would structurally
    // merge unrelated families; in a locale holding nothing but `avoid`
    // the accidental chain is the lesser distortion.
    for (std::size_t i = loc.recent.size(); i-- > 0;) {
      if (loc.recent[i] != avoid) return loc.recent[i];
    }
    return loc.rootFp;
  }

  void emitRead(Trace& trace, bool core) {
    const auto n = static_cast<std::uint32_t>(rootN_.sample(rng_));
    const auto p = static_cast<std::uint32_t>(rootP_.sample(rng_) - 1);
    const std::uint64_t fp = newObject(n, p, true);
    Event event;
    event.kind = EventKind::kPrimitive;
    event.primitive = Primitive::kRead;
    event.result = record(fp);
    trace.append(std::move(event));
    ++emitted_;
    Locale loc;
    loc.rootFp = fp;
    loc.isCore = core;
    loc.recent.push_back(fp);
    locales_.push_back(std::move(loc));
    currentLocale_ = locales_.size() - 1;
    localeLru_.push_back(currentLocale_);
    // The fresh object is the previous result now; chains may hang off it
    // (it belongs to the new current locale).
    lastResult_ = fp;
  }

  void maybeFunctionEvents(Trace& trace) {
    if (!rng_.chance(profile_.functionCallsPerPrimitive)) return;
    const bool canCall = callStack_.size() < profile_.maxCallDepth;
    const bool canReturn = !callStack_.empty();
    const bool doCall = canCall && (!canReturn || rng_.chance(0.55));
    if (doCall) {
      Event enter;
      enter.kind = EventKind::kFunctionEnter;
      enter.functionId = trace.internFunction(
          "f" + std::to_string(rng_.below(24)));
      std::uint8_t args = 0;
      while (args < 6 &&
             rng_.chance(profile_.meanFunctionArgs /
                         (profile_.meanFunctionArgs + 1.0))) {
        ++args;
      }
      enter.argCount = args;
      callStack_.push_back(enter.functionId);
      trace.append(std::move(enter));
    } else if (canReturn) {
      Event exit;
      exit.kind = EventKind::kFunctionExit;
      exit.functionId = callStack_.back();
      callStack_.pop_back();
      trace.append(std::move(exit));
    }
  }

  Primitive choosePrimitive() {
    const double u = rng_.uniform();
    double acc = profile_.carFrac;
    if (u < acc) return Primitive::kCar;
    acc += profile_.cdrFrac;
    if (u < acc) return Primitive::kCdr;
    acc += profile_.consFrac;
    if (u < acc) return Primitive::kCons;
    acc += profile_.rplacFrac;
    if (u < acc) {
      return rng_.chance(0.5) ? Primitive::kRplaca : Primitive::kRplacd;
    }
    // Remainder: the low-frequency primitives. Reads are rare — the
    // workloads load their data once, so almost all of the "other" bucket
    // touches existing structure.
    const double v = rng_.uniform();
    if (v < 0.34) return Primitive::kAtom;
    if (v < 0.68) return Primitive::kNull;
    if (v < 0.88) return Primitive::kEqual;
    if (v < 0.98) return Primitive::kWrite;
    return Primitive::kRead;
  }

  void emitPrimitive(Trace& trace, bool allowNewLocale) {
    const Primitive primitive = choosePrimitive();
    if (primitive == Primitive::kRead) {
      emitRead(trace, false);
      return;
    }

    maybeSwitchLocale(trace, allowNewLocale);

    Event event;
    event.kind = EventKind::kPrimitive;
    event.primitive = primitive;

    auto chooseArg = [&](double chainProb) -> std::uint64_t {
      // A chain needs the previous result to be a list, which caps the
      // achievable rate below the requested fraction; the 1.35 overdrive
      // compensates (calibrated against Table 3.2, see EXPERIMENTS.md).
      const double attempt = std::min(1.0, chainProb * 1.35);
      if (lastResult_ != 0 && rng_.chance(attempt)) return lastResult_;
      // Not chaining: avoid accidentally picking the previous result, or
      // the preprocessing pass would count a chain anyway.
      return pickFromLocale(lastResult_);
    };

    switch (primitive) {
      case Primitive::kCar:
      case Primitive::kCdr: {
        const std::uint64_t arg = chooseArg(primitive == Primitive::kCar
                                                ? profile_.carChainFrac
                                                : profile_.cdrChainFrac);
        event.args.push_back(record(arg));
        // Chain planning: decide now whether the *next* access should
        // chain off this result; if so, bias the decomposition so the
        // result is a list the next call can consume.
        const bool planChain = rng_.chance(
            std::max(profile_.carChainFrac, profile_.cdrChainFrac));
        const std::uint64_t child = primitive == Primitive::kCar
                                        ? carOf(arg, planChain)
                                        : cdrOf(arg);
        event.result = record(child);
        if (child != 0) touchLocale(child);
        lastResult_ = child;
        break;
      }
      case Primitive::kCons: {
        const std::uint64_t head = chooseArg(0.5);
        const std::uint64_t tail = pickFromLocale();
        event.args.push_back(record(head));
        event.args.push_back(record(tail));
        // Copy shapes out before newObject() can rehash objects_.
        const std::uint32_t hn = object(head).n, hp = object(head).p;
        const std::uint32_t tn = object(tail).n, tp = object(tail).p;
        const std::uint64_t fresh = newObject(hn + tn, hp + tp + 1, true);
        // The new cons is structurally related to both operands.
        object(fresh).carChild = head;
        object(fresh).cdrChild = tail;
        object(fresh).decomposed = true;
        object(fresh).firstIsAtom = false;
        event.result = record(fresh);
        // Giant accumulators are built but rarely re-passed whole as
        // primitive arguments; keeping them out of the hot set stops the
        // measured shape means from snowballing past Table 3.1's.
        if (hn + tn <= 4 * profile_.meanN &&
            hp + tp <= 4 * profile_.meanP) {
          touchLocale(fresh);
        }
        lastResult_ = fresh;
        break;
      }
      case Primitive::kRplaca:
      case Primitive::kRplacd: {
        const std::uint64_t target = chooseArg(0.2);
        const std::uint64_t value = pickFromLocale();
        event.args.push_back(record(target));
        event.args.push_back(record(value));
        // Destructive update: the object's derivation memo changes.
        SyntheticObject& obj = object(target);
        if (primitive == Primitive::kRplaca) {
          obj.carChild = value;
        } else {
          obj.cdrChild = value;
        }
        obj.decomposed = true;
        obj.firstIsAtom = false;
        event.result = record(target);
        touchLocale(target);
        lastResult_ = target;
        break;
      }
      case Primitive::kAtom:
      case Primitive::kNull:
      case Primitive::kWrite: {
        const std::uint64_t arg = chooseArg(0.3);
        event.args.push_back(record(arg));
        event.result = ObjectRecord{};  // t/nil — an atom
        lastResult_ = 0;
        break;
      }
      case Primitive::kEqual: {
        event.args.push_back(record(chooseArg(0.3)));
        event.args.push_back(record(pickFromLocale()));
        event.result = ObjectRecord{};
        lastResult_ = 0;
        break;
      }
      case Primitive::kRead:
        break;  // handled above
    }
    trace.append(std::move(event));
    ++emitted_;
  }

  const WorkloadProfile& profile_;
  Rng& rng_;
  EmpiricalDistribution rootN_;
  EmpiricalDistribution rootP_;

  std::unordered_map<std::uint64_t, SyntheticObject> objects_;
  std::uint64_t nextFp_ = 1;
  std::vector<Locale> locales_;
  std::vector<std::size_t> localeLru_;
  std::size_t currentLocale_ = 0;
  std::uint64_t lastResult_ = 0;
  std::uint64_t emitted_ = 0;  ///< primitive events appended so far
  std::vector<std::uint32_t> callStack_;
};

WorkloadProfile baseProfile(std::string name, std::uint64_t length,
                            double scale) {
  WorkloadProfile profile;
  profile.name = std::move(name);
  profile.primitiveCalls =
      static_cast<std::uint64_t>(static_cast<double>(length) * scale);
  return profile;
}

}  // namespace

WorkloadProfile slangProfile(double scale) {
  WorkloadProfile p = baseProfile("Slang", 19846, scale);
  p.carFrac = 0.28;
  p.cdrFrac = 0.32;
  p.consFrac = 0.30;  // Fig 3.1: Slang has the highest cons share
  p.rplacFrac = 0.02;
  p.meanN = 10.04;
  p.meanP = 1.99;
  p.carChainFrac = 0.5568;
  p.cdrChainFrac = 0.2671;
  p.functionCallsPerPrimitive = 0.55;  // Table 5.1: 620 calls / 2304 prims
  p.maxCallDepth = 14;
  return p;
}

WorkloadProfile plagenProfile(double scale) {
  WorkloadProfile p = baseProfile("PlaGen", 59967, scale);
  p.carFrac = 0.38;
  p.cdrFrac = 0.44;
  p.consFrac = 0.08;
  p.rplacFrac = 0.01;
  p.meanN = 12.40;
  p.meanP = 2.90;
  p.carChainFrac = 0.2668;
  p.cdrChainFrac = 0.4089;
  p.functionCallsPerPrimitive = 0.45;  // Table 5.1: 8173 / 34628
  p.maxCallDepth = 15;
  return p;
}

WorkloadProfile lyraProfile(double scale) {
  WorkloadProfile p = baseProfile("Lyra", 252951, scale);
  p.carFrac = 0.44;
  p.cdrFrac = 0.40;
  p.consFrac = 0.08;
  p.rplacFrac = 0.01;
  p.meanN = 9.70;
  p.meanP = 1.55;
  p.carChainFrac = 0.8275;
  p.cdrChainFrac = 0.6899;
  p.functionCallsPerPrimitive = 0.14;  // Table 5.1: 11907 / 160933
  p.maxCallDepth = 27;
  // Lyra has the largest working set (Figs 3.5/3.6, 5.2).
  p.coreLocales = 14;
  p.stayProb = 0.84;
  return p;
}

WorkloadProfile editorProfile(double scale) {
  WorkloadProfile p = baseProfile("Editor", 33790, scale);
  p.carFrac = 0.33;
  p.cdrFrac = 0.50;
  p.consFrac = 0.07;
  p.rplacFrac = 0.02;
  p.meanN = 74.74;  // Table 3.1: the Editor works on long, deep lists
  p.meanP = 20.98;
  p.carChainFrac = 0.4721;
  p.cdrChainFrac = 0.3872;
  p.functionCallsPerPrimitive = 0.45;  // Table 5.1: 342 / 1437
  p.maxCallDepth = 29;
  p.coreLocales = 5;
  return p;
}

WorkloadProfile pearlProfile(double scale) {
  WorkloadProfile p = baseProfile("Pearl", 1572, scale);
  p.carFrac = 0.30;
  p.cdrFrac = 0.30;
  p.consFrac = 0.10;
  p.rplacFrac = 0.24;  // Fig 3.1: Pearl is rplaca/rplacd heavy
  p.meanN = 13.98;
  p.meanP = 2.79;
  p.carChainFrac = 0.0088;  // Table 3.2: hunks, almost no chaining
  p.cdrChainFrac = 0.0100;
  p.functionCallsPerPrimitive = 0.20;
  p.maxCallDepth = 16;
  return p;
}

WorkloadProfile slangSimProfile() {
  WorkloadProfile p = slangProfile(1.0);
  p.primitiveCalls = 2304;  // Table 5.1
  return p;
}

WorkloadProfile plagenSimProfile() {
  WorkloadProfile p = plagenProfile(1.0);
  p.primitiveCalls = 34628;
  return p;
}

WorkloadProfile lyraSimProfile() {
  WorkloadProfile p = lyraProfile(1.0);
  p.primitiveCalls = 160933;
  return p;
}

WorkloadProfile editorSimProfile() {
  WorkloadProfile p = editorProfile(1.0);
  p.primitiveCalls = 1437;
  return p;
}

Trace generate(const WorkloadProfile& profile, support::Rng& rng) {
  Generator generator(profile, rng);
  return generator.run();
}

}  // namespace small::trace
