// Calibrated synthetic trace generation.
//
// The thesis drives its studies from traces of five proprietary Lisp
// programs (SLANG, PLAGEN, LYRA, EDITOR, PEARL) that are not available.
// This generator synthesizes a raw `Trace` whose aggregate statistics are
// pinned to the numbers the thesis publishes for each workload:
//   * trace length in primitive calls (Table 5.1 / §3.3.1),
//   * the primitive mix (Fig 3.1),
//   * mean list shape n and p (Table 3.1),
//   * car/cdr chaining rates (Table 3.2),
//   * function call count and maximum call depth (Table 5.1),
// and whose *structure* exhibits the paper's structural locality: accesses
// cluster into locales (families of car/cdr-related references rooted at a
// few long-lived objects) with occasional transient locales, so the
// Chapter 3 list-set partition finds few large long-lived sets and several
// small short-lived ones.
//
// Derived objects are memoized — the car of the same object twice yields
// the same fingerprint — which is exactly the "identical-looking lists"
// ambiguity the thesis preprocessing resolves.
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace small::trace {

/// Statistical profile of one workload.
struct WorkloadProfile {
  std::string name;

  /// Trace length in primitive calls.
  std::uint64_t primitiveCalls = 20000;

  /// Fraction of primitive calls per primitive (Fig 3.1); the remainder
  /// after the named fields is split among atom/null/equal/read/write.
  double carFrac = 0.40;
  double cdrFrac = 0.40;
  double consFrac = 0.10;
  double rplacFrac = 0.02;  ///< split evenly between rplaca and rplacd

  /// Mean list shape (Table 3.1). The generator uses geometric-tailed
  /// distributions with these means.
  double meanN = 10.0;
  double meanP = 2.0;

  /// Fraction of car/cdr calls whose argument is the previous call's
  /// return value (Table 3.2).
  double carChainFrac = 0.40;
  double cdrChainFrac = 0.40;

  /// Function-calling texture (Table 5.1).
  double functionCallsPerPrimitive = 0.10;  ///< enter events per primitive
  std::uint32_t maxCallDepth = 20;
  double meanFunctionArgs = 2.0;

  /// Structural-locality texture: number of long-lived "core" locales, the
  /// probability a non-chained access stays in the current locale, and the
  /// probability a locale switch lands on a core locale (as opposed to a
  /// fresh transient one).
  std::uint32_t coreLocales = 8;
  double stayProb = 0.80;
  double coreSwitchProb = 0.92;
};

/// Profiles calibrated to the five thesis workloads. `scale` multiplies the
/// trace length (1.0 reproduces the Chapter 3 lengths).
WorkloadProfile slangProfile(double scale = 1.0);
WorkloadProfile plagenProfile(double scale = 1.0);
WorkloadProfile lyraProfile(double scale = 1.0);
WorkloadProfile editorProfile(double scale = 1.0);
WorkloadProfile pearlProfile(double scale = 1.0);

/// The Chapter 5 simulation traces are much shorter for Slang/Editor
/// (Table 5.1); these profiles use those lengths.
WorkloadProfile slangSimProfile();
WorkloadProfile plagenSimProfile();
WorkloadProfile lyraSimProfile();
WorkloadProfile editorSimProfile();

/// Generate a raw trace following `profile`.
Trace generate(const WorkloadProfile& profile, support::Rng& rng);

}  // namespace small::trace
