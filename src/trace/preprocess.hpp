// Trace preprocessing (§5.2.1).
//
// "We implemented this by first pre-processing the trace files. Each list
//  argument was replaced by 2 integers: a unique identifier, and a chaining
//  flag. Lists that look identical are allotted the same unique identifier.
//  The chaining flag was set to 1 if the list argument happens to be the
//  value returned by the previous call in the trace."
//
// The preprocessed form is what both the Chapter 3 analyses and the
// Chapter 5 trace-driven simulator consume.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace small::trace {

/// Sentinel for "not a list object" (atom argument/result).
inline constexpr std::uint32_t kNoObject = 0xffffffffu;

struct PreprocessedObject {
  std::uint32_t id = kNoObject;  ///< unique list identifier, or kNoObject
  bool chained = false;          ///< was the previous call's return value
  std::uint32_t n = 0;
  std::uint32_t p = 0;
};

struct PreprocessedEvent {
  EventKind kind = EventKind::kPrimitive;
  Primitive primitive = Primitive::kCar;
  std::vector<PreprocessedObject> args;
  PreprocessedObject result;
  std::uint32_t functionId = 0;
  std::uint8_t argCount = 0;
};

struct PreprocessedTrace {
  std::string name;
  std::vector<PreprocessedEvent> events;
  std::uint32_t uniqueListCount = 0;  ///< ids are in [0, uniqueListCount)
  std::uint64_t primitiveCount = 0;

  TraceContent content() const;
};

/// Run the §5.2.1 preprocessing pass over a raw trace.
PreprocessedTrace preprocess(const Trace& trace);

}  // namespace small::trace
