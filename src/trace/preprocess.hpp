// Trace preprocessing (§5.2.1).
//
// "We implemented this by first pre-processing the trace files. Each list
//  argument was replaced by 2 integers: a unique identifier, and a chaining
//  flag. Lists that look identical are allotted the same unique identifier.
//  The chaining flag was set to 1 if the list argument happens to be the
//  value returned by the previous call in the trace."
//
// The preprocessed form is what both the Chapter 3 analyses and the
// Chapter 5 trace-driven simulator consume.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace small::trace {

class MappedTrace;

/// Sentinel for "not a list object" (atom argument/result).
inline constexpr std::uint32_t kNoObject = 0xffffffffu;

struct PreprocessedObject {
  std::uint32_t id = kNoObject;  ///< unique list identifier, or kNoObject
  bool chained = false;          ///< was the previous call's return value
  std::uint32_t n = 0;
  std::uint32_t p = 0;
};

struct PreprocessedEvent {
  EventKind kind = EventKind::kPrimitive;
  Primitive primitive = Primitive::kCar;
  std::vector<PreprocessedObject> args;
  PreprocessedObject result;
  std::uint32_t functionId = 0;
  std::uint8_t argCount = 0;
};

struct PreprocessedTrace {
  std::string name;
  std::vector<PreprocessedEvent> events;
  std::uint32_t uniqueListCount = 0;  ///< ids are in [0, uniqueListCount)
  std::uint64_t primitiveCount = 0;

  TraceContent content() const;
};

/// The §5.2.1 pass as an incremental state machine: feed events one at a
/// time and get their preprocessed form back. The fingerprint->id map and
/// the previous-result chaining state live here, so the same class serves
/// the whole-trace preprocess() below and the batched streaming path over
/// a mmap'd binary trace (preprocessMapped, core::replayMappedTrace) —
/// one implementation, bit-identical output either way.
class Preprocessor {
 public:
  /// Preprocess one event in stream order, writing into `out` (whose args
  /// storage is reused — suitable for caller-owned batch buffers).
  void process(const Event& event, PreprocessedEvent& out);

  /// Unique list identifiers assigned so far.
  std::uint32_t uniqueListCount() const {
    return static_cast<std::uint32_t>(idByFingerprint_.size());
  }
  /// Primitive events seen so far.
  std::uint64_t primitiveCount() const { return primitiveCount_; }

 private:
  PreprocessedObject resolve(const ObjectRecord& record);

  std::unordered_map<std::uint64_t, std::uint32_t> idByFingerprint_;
  // Fingerprint of the previous primitive call's return value; the
  // chaining flag compares against it. Function enter/exit events do not
  // interrupt a chain (the thesis notes chained calls "might actually be
  // separated by several function calls" — what matters is that no list
  // creation or modification intervened, which holds because any such
  // operation is itself a traced primitive).
  std::uint64_t previousResult_ = 0;
  bool havePreviousResult_ = false;
  std::uint64_t primitiveCount_ = 0;
};

/// Run the §5.2.1 preprocessing pass over a raw trace.
PreprocessedTrace preprocess(const Trace& trace);

/// The same pass over a mmap'd binary trace, decoding in batches so the
/// record stream is read exactly once and never materialized as a Trace.
/// Produces output bit-identical to preprocess(mapped.toTrace()).
PreprocessedTrace preprocessMapped(const MappedTrace& mapped);

}  // namespace small::trace
