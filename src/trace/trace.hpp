// The list-access trace model (§3.3.1, §5.2.1).
//
// The thesis instruments a Lisp interpreter so that "on the call of a list
// access or modify function, the function name and its arguments (in
// s-expression form) were written to a trace file", together with entry/exit
// records for user-defined functions (name and argument count). This module
// defines that record stream.
//
// A raw trace identifies each list argument/result by a *structural
// fingerprint* (a hash of its printed form) plus its (n, p) shape — exactly
// the information the thesis could recover from its textual traces, with
// the same ambiguity: two lists that look identical get the same
// fingerprint. The preprocessing pass of §5.2.1 resolves fingerprints to
// small unique identifiers and computes the chaining flag.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sexpr/metrics.hpp"

namespace small::trace {

/// The list-manipulating primitives the thesis traces (§2.2.2, Fig 3.1).
enum class Primitive : std::uint8_t {
  kCar,
  kCdr,
  kCons,
  kRplaca,
  kRplacd,
  kAtom,    // predicate; traced as one of the "other" primitives
  kNull,
  kEqual,
  kAppend,
  kRead,    // readlist: new list data enters the system
  kWrite,   // writelist
};

/// Number of distinct Primitive values (for array sizing).
inline constexpr std::size_t kPrimitiveCount = 11;

const char* primitiveName(Primitive p);
std::optional<Primitive> primitiveFromName(std::string_view name);

/// Does the primitive access/modify list structure through a list argument?
bool primitiveTakesList(Primitive p);

/// One traced list argument or result.
struct ObjectRecord {
  /// Structural fingerprint: equal-looking s-expressions share it.
  std::uint64_t fingerprint = 0;
  /// Shape statistics of the s-expression at trace time.
  std::uint32_t n = 0;      ///< symbols in the list
  std::uint32_t p = 0;      ///< internal parenthesis pairs
  bool isList = false;      ///< false for atoms / nil
};

enum class EventKind : std::uint8_t {
  kPrimitive,
  kFunctionEnter,
  kFunctionExit,
};

struct Event {
  EventKind kind = EventKind::kPrimitive;

  // --- kPrimitive ---
  Primitive primitive = Primitive::kCar;
  std::vector<ObjectRecord> args;
  ObjectRecord result;

  // --- kFunctionEnter / kFunctionExit ---
  std::uint32_t functionId = 0;  ///< interned function-name id
  std::uint8_t argCount = 0;     ///< number of arguments at the call
};

/// Aggregate content statistics in the shape of Table 5.1.
struct TraceContent {
  std::uint64_t functionCalls = 0;
  std::uint64_t primitiveCalls = 0;
  std::uint32_t maxCallDepth = 0;
  /// kFunctionExit events seen at depth 0 — a well-formed trace has none;
  /// a nonzero count flags a truncated or corrupted event stream instead
  /// of silently clamping the depth counter.
  std::uint64_t unbalancedExits = 0;

  bool balanced() const { return unbalancedExits == 0; }
};

/// A recorded run: the event stream plus the function-name table.
class Trace {
 public:
  void append(Event event) { events_.push_back(std::move(event)); }

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event>& events() { return events_; }

  std::uint32_t internFunction(std::string_view name);
  const std::string& functionName(std::uint32_t id) const;
  std::size_t functionCount() const { return functionNames_.size(); }

  /// Table 5.1 statistics.
  TraceContent content() const;

  /// Number of primitive events (the thesis' "trace length").
  std::uint64_t primitiveLength() const;

  std::string name;  ///< workload label ("Slang", "Lyra", ...)

 private:
  std::vector<Event> events_;
  std::vector<std::string> functionNames_;
};

}  // namespace small::trace
