#include "trace/trace.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace small::trace {

namespace {

constexpr std::array<const char*, kPrimitiveCount> kNames = {
    "car",  "cdr",   "cons",  "rplaca", "rplacd", "atom",
    "null", "equal", "append", "read",  "write",
};

}  // namespace

const char* primitiveName(Primitive p) {
  return kNames[static_cast<std::size_t>(p)];
}

std::optional<Primitive> primitiveFromName(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (name == kNames[i]) return static_cast<Primitive>(i);
  }
  return std::nullopt;
}

bool primitiveTakesList(Primitive p) {
  switch (p) {
    case Primitive::kCar:
    case Primitive::kCdr:
    case Primitive::kRplaca:
    case Primitive::kRplacd:
    case Primitive::kAtom:
    case Primitive::kNull:
    case Primitive::kEqual:
    case Primitive::kAppend:
    case Primitive::kWrite:
      return true;
    case Primitive::kCons:   // operands may be atoms
    case Primitive::kRead:   // creates a list, takes none
      return false;
  }
  return false;
}

std::uint32_t Trace::internFunction(std::string_view name) {
  for (std::size_t i = 0; i < functionNames_.size(); ++i) {
    if (functionNames_[i] == name) return static_cast<std::uint32_t>(i);
  }
  functionNames_.emplace_back(name);
  return static_cast<std::uint32_t>(functionNames_.size() - 1);
}

const std::string& Trace::functionName(std::uint32_t id) const {
  if (id >= functionNames_.size()) {
    throw support::Error("Trace: bad function id");
  }
  return functionNames_[id];
}

TraceContent Trace::content() const {
  TraceContent content{};
  std::uint32_t depth = 0;
  for (const Event& event : events_) {
    switch (event.kind) {
      case EventKind::kPrimitive:
        ++content.primitiveCalls;
        break;
      case EventKind::kFunctionEnter:
        ++content.functionCalls;
        ++depth;
        content.maxCallDepth = std::max(content.maxCallDepth, depth);
        break;
      case EventKind::kFunctionExit:
        if (depth > 0) {
          --depth;
        } else {
          ++content.unbalancedExits;
        }
        break;
    }
  }
  return content;
}

std::uint64_t Trace::primitiveLength() const {
  std::uint64_t n = 0;
  for (const Event& event : events_) {
    if (event.kind == EventKind::kPrimitive) ++n;
  }
  return n;
}

}  // namespace small::trace
