// Binary serialization of raw traces (the `SMTR` format).
//
// The text format (trace/io.hpp) is the archival/interchange form; this is
// the scale form: a versioned little-endian layout that `MappedTrace` can
// mmap and decode in place, so loading a trace is a memory-bandwidth
// problem instead of a parsing problem. The two formats are lossless
// mirrors of each other — text -> binary -> text is byte-identical
// (tools/trace_convert, gated in CI).
//
// Layout (all multi-byte integers are unsigned LEB128 varints unless
// noted; DESIGN.md §Trace formats has the full diagram):
//
//   magic    4 bytes       'S' 'M' 'T' 'R'
//   version  u32 LE        format version (kBinaryTraceVersion)
//   name     varint + raw  workload label, length-prefixed bytes
//   names    varint F, then F x (varint + raw) interned function names
//   count    varint        number of event records that follow
//   records  count x record
//   (end of file — trailing bytes are an error)
//
// One record:
//   tag      u8            bits 0-1: kind (0 primitive, 1 enter, 2 exit)
//                          bits 2-7: primitive id (kind 0 only, else 0)
//   kind 0:  varint argCount, then (1 + argCount) objects, result first
//   kind 1:  varint functionId, varint argCount
//   kind 2:  varint functionId
// One object (the text format's fp:n:p:l tuple, packed):
//   varint fingerprint, varint (n << 1 | isList), varint p
//
// Every malformed input — bad magic, unsupported version, truncation,
// varint overrun, out-of-range field, name-table index out of range,
// trailing bytes — raises support::Error carrying the file path and the
// byte offset (the binary analogue of the text loader's line numbers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace small::trace {

inline constexpr char kBinaryTraceMagic[4] = {'S', 'M', 'T', 'R'};
inline constexpr std::uint32_t kBinaryTraceVersion = 1;

/// True when `bytes` (at least 4 of them) start with the SMTR magic —
/// the sniff loadFile() uses to dispatch between formats.
bool looksBinary(const char* bytes, std::size_t size);

void saveBinary(const Trace& trace, std::ostream& out);
void saveBinaryFile(const Trace& trace, const std::string& path);

/// Incremental SMTR writer: append events one at a time and get a
/// complete binary trace file on finish(), without ever holding a Trace
/// (or more than one flush buffer of encoded records) in memory — the
/// emit side of the streaming story whose read side is MappedTrace.
///
/// The header carries the record count *before* the record stream, so a
/// single-pass writer cannot emit the final file front to back. Instead
/// records stream into a sibling `<path>.records.tmp.<pid>` spill file;
/// finish() writes the header (with the now-known count and name table)
/// to `<path>.tmp.<pid>`, splices the spill file in by bounded-buffer
/// copy, and renames into place — the same atomic-output contract as
/// tools/trace_convert: `path` is only ever absent, its old content, or
/// a complete trace, and no temp survives any outcome (the destructor
/// aborts an unfinished writer).
///
/// Byte-for-byte identical to saveBinaryFile() of the equivalent
/// in-memory Trace: both run the same record encoder, which is what
/// lets the family generators' streaming-vs-in-memory equality tests
/// compare whole files.
class BinaryWriter {
 public:
  /// Create the spill file next to `path`. Throws support::Error when it
  /// cannot be opened.
  BinaryWriter(std::string path, std::string traceName);
  ~BinaryWriter();  ///< aborts (removes temps) unless finish()ed
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Intern a function name exactly like Trace::internFunction (same
  /// dedup, same id order, hence the same header bytes).
  std::uint32_t internFunction(std::string_view name);

  /// Encode and buffer one event. Function events must reference an
  /// already-interned id; records are spilled every ~1 MiB. Throws
  /// support::Error on an out-of-range function id or a write failure.
  void append(const Event& event);

  std::uint64_t recordCount() const { return recordCount_; }
  std::uint64_t primitiveCount() const { return primitiveCount_; }

  /// Assemble header + records and atomically rename into place.
  /// Throws support::Error on any I/O failure (temps removed first).
  void finish();

  /// Remove the temp files without producing output. Safe to call at
  /// any point; no-op after finish().
  void abort() noexcept;

 private:
  void spill();

  std::string path_;
  std::string name_;
  std::string recordsTmp_;
  std::FILE* records_ = nullptr;
  std::string buffer_;
  std::vector<std::string> functionNames_;
  std::uint64_t recordCount_ = 0;
  std::uint64_t primitiveCount_ = 0;
  bool finished_ = false;
};

/// A trace file mapped read-only into memory. Owns the mapping (unmapped
/// on destruction); the header (name + function-name table) is decoded
/// and validated eagerly at open, the record stream is decoded on the fly
/// by BinaryDecoder so a billion-primitive trace costs page cache, not
/// heap. Movable, not copyable.
class MappedTrace {
 public:
  /// How the file bytes are backed. kDefault mmaps where the platform
  /// supports it; kBuffered always reads the file into an owned buffer.
  /// Both backings feed the identical header validation and decoder, so
  /// every malformed input produces the same error text either way —
  /// trace_binary_test pins that parity (a zero-length file, which mmap(2)
  /// would reject with EINVAL, is caught before mapping in both).
  enum class Backing { kDefault, kBuffered };

  /// Map (or read) `path` and validate its header. Throws support::Error
  /// (with the path in the message) on open/map failure, empty file, bad
  /// magic, unsupported version, or a malformed header.
  static MappedTrace open(const std::string& path,
                          Backing backing = Backing::kDefault);

  /// True when the bytes are an mmap'd view rather than an owned buffer.
  bool isMapped() const { return mapped_; }

  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;
  ~MappedTrace();

  const std::string& path() const { return path_; }
  std::uint32_t version() const { return version_; }
  const std::string& traceName() const { return name_; }
  std::size_t functionCount() const { return functionNames_.size(); }
  const std::vector<std::string>& functionNames() const {
    return functionNames_;
  }
  /// Declared number of event records in the stream.
  std::uint64_t recordCount() const { return recordCount_; }
  /// Total mapped size in bytes.
  std::size_t fileBytes() const { return size_; }
  /// Bytes occupied by the record stream (fileBytes minus the header).
  std::size_t recordBytes() const { return size_ - recordOffset_; }

  /// Materialize the whole file as an in-memory Trace (what
  /// trace::loadFile does after sniffing the magic). Validates every
  /// record; throws support::Error on corruption.
  Trace toTrace() const;

 private:
  friend class BinaryDecoder;
  MappedTrace() = default;

  std::string path_;
  const unsigned char* data_ = nullptr;  // mapping base (or owned buffer)
  std::size_t size_ = 0;
  bool mapped_ = false;          // munmap on destroy (else delete[])
  std::uint32_t version_ = 0;
  std::string name_;
  std::vector<std::string> functionNames_;
  std::uint64_t recordCount_ = 0;
  std::size_t recordOffset_ = 0;  // byte offset of the first record
};

/// Zero-copy batched cursor over a MappedTrace's record stream.
///
/// decodeBatch() materializes up to `out.size()` events per call into a
/// caller-owned buffer, reusing the Events' arg vectors across batches so
/// the steady state allocates nothing — the consumer loop (preprocessing,
/// replay) stays in i-cache instead of ping-ponging with a parser.
class BinaryDecoder {
 public:
  explicit BinaryDecoder(const MappedTrace& trace);

  /// Decode up to out.size() events into out[0..k); returns k (0 at end
  /// of stream). The buffer must be non-empty. Events are overwritten in
  /// place; their args capacity is reused. Throws support::Error on any
  /// malformed record, with the file path and byte offset.
  std::size_t decodeBatch(std::vector<Event>& out);

  /// Events decoded so far.
  std::uint64_t decoded() const { return decoded_; }
  /// True once the declared record count has been consumed (and the
  /// stream end has been verified to coincide with the file end).
  bool done() const { return decoded_ == trace_->recordCount(); }

 private:
  const MappedTrace* trace_;
  std::size_t offset_;    // current byte offset into the mapping
  std::uint64_t decoded_ = 0;
};

}  // namespace small::trace
