#include "trace/binary.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <utility>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SMALL_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace small::trace {

using support::ParseError;

namespace {

[[noreturn]] void fail(const std::string& path, std::size_t offset,
                       const std::string& message) {
  throw ParseError("trace file '" + path + "' offset " +
                   std::to_string(offset) + ": " + message);
}

// --- varint (unsigned LEB128, u64) ---

void appendVarint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

// Strict decode: at most 10 bytes, the 10th may only carry bit 63, and a
// continuation bit past the end of the buffer is a truncation.
std::uint64_t readVarint(const unsigned char* data, std::size_t size,
                         std::size_t& offset, const std::string& path,
                         const char* what) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (offset >= size) {
      fail(path, offset, std::string("truncated ") + what +
                             " (file ends inside a varint)");
    }
    const unsigned char byte = data[offset++];
    if (shift == 63 && (byte & 0xFE) != 0) {
      fail(path, offset - 1,
           std::string("varint overrun in ") + what + " (value exceeds 64 bits)");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  fail(path, offset, std::string("varint overrun in ") + what);
}

std::string readBlob(const unsigned char* data, std::size_t size,
                     std::size_t& offset, const std::string& path,
                     const char* what) {
  const std::uint64_t length = readVarint(data, size, offset, path, what);
  if (length > size - offset) {
    fail(path, offset, std::string("truncated ") + what + " (" +
                           std::to_string(length) + " bytes declared, " +
                           std::to_string(size - offset) + " remain)");
  }
  std::string blob(reinterpret_cast<const char*>(data) + offset,
                   static_cast<std::size_t>(length));
  offset += static_cast<std::size_t>(length);
  return blob;
}

void appendObject(std::string& out, const ObjectRecord& object) {
  appendVarint(out, object.fingerprint);
  appendVarint(out, (static_cast<std::uint64_t>(object.n) << 1) |
                        (object.isList ? 1 : 0));
  appendVarint(out, object.p);
}

ObjectRecord readObject(const unsigned char* data, std::size_t size,
                        std::size_t& offset, const std::string& path) {
  ObjectRecord object;
  object.fingerprint =
      readVarint(data, size, offset, path, "object fingerprint");
  const std::uint64_t packed =
      readVarint(data, size, offset, path, "object shape");
  object.isList = (packed & 1) != 0;
  const std::uint64_t n = packed >> 1;
  if (n > 0xFFFFFFFFull) {
    fail(path, offset, "object n field " + std::to_string(n) +
                           " out of range (max 4294967295)");
  }
  object.n = static_cast<std::uint32_t>(n);
  const std::uint64_t p =
      readVarint(data, size, offset, path, "object p field");
  if (p > 0xFFFFFFFFull) {
    fail(path, offset, "object p field " + std::to_string(p) +
                           " out of range (max 4294967295)");
  }
  object.p = static_cast<std::uint32_t>(p);
  return object;
}

constexpr std::size_t kWriterFlushBytes = 1 << 20;

// The one record encoder: saveBinary() and BinaryWriter both run this,
// which is what makes a streamed file byte-identical to a whole-Trace
// save of the same events.
void appendEvent(std::string& buffer, const Event& event,
                 std::size_t functionCount) {
  switch (event.kind) {
    case EventKind::kPrimitive: {
      const auto primitive = static_cast<unsigned>(event.primitive);
      buffer.push_back(static_cast<char>(primitive << 2));
      appendVarint(buffer, event.args.size());
      appendObject(buffer, event.result);
      for (const ObjectRecord& arg : event.args) {
        appendObject(buffer, arg);
      }
      break;
    }
    case EventKind::kFunctionEnter:
    case EventKind::kFunctionExit: {
      if (event.functionId >= functionCount) {
        throw support::Error(
            "trace save: function id " + std::to_string(event.functionId) +
            " out of range (name table holds " +
            std::to_string(functionCount) + ")");
      }
      buffer.push_back(
          event.kind == EventKind::kFunctionEnter ? '\x01' : '\x02');
      appendVarint(buffer, event.functionId);
      if (event.kind == EventKind::kFunctionEnter) {
        appendVarint(buffer, event.argCount);
      }
      break;
    }
  }
}

// magic + version + name + name table + record count — everything that
// precedes the record stream.
void appendHeader(std::string& buffer, const std::string& name,
                  const std::vector<std::string>& functionNames,
                  std::uint64_t recordCount) {
  buffer.append(kBinaryTraceMagic, sizeof(kBinaryTraceMagic));
  for (unsigned shift = 0; shift < 32; shift += 8) {
    buffer.push_back(
        static_cast<char>((kBinaryTraceVersion >> shift) & 0xFF));
  }
  appendVarint(buffer, name.size());
  buffer.append(name);
  appendVarint(buffer, functionNames.size());
  for (const std::string& functionName : functionNames) {
    appendVarint(buffer, functionName.size());
    buffer.append(functionName);
  }
  appendVarint(buffer, recordCount);
}

}  // namespace

bool looksBinary(const char* bytes, std::size_t size) {
  return size >= sizeof(kBinaryTraceMagic) &&
         std::memcmp(bytes, kBinaryTraceMagic, sizeof(kBinaryTraceMagic)) ==
             0;
}

void saveBinary(const Trace& trace, std::ostream& out) {
  std::string buffer;
  buffer.reserve(kWriterFlushBytes + 64);
  const std::size_t functionCount = trace.functionCount();
  std::vector<std::string> functionNames;
  functionNames.reserve(functionCount);
  for (std::size_t id = 0; id < functionCount; ++id) {
    functionNames.push_back(
        trace.functionName(static_cast<std::uint32_t>(id)));
  }
  appendHeader(buffer, trace.name, functionNames, trace.events().size());

  for (const Event& event : trace.events()) {
    appendEvent(buffer, event, functionCount);
    if (buffer.size() >= kWriterFlushBytes) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

void saveBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw support::Error("trace: cannot open for write: " + path);
  }
  saveBinary(trace, out);
  out.flush();
  if (!out) {
    throw support::Error("trace: write failed: " + path);
  }
}

namespace {

long writerPid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

BinaryWriter::BinaryWriter(std::string path, std::string traceName)
    : path_(std::move(path)), name_(std::move(traceName)) {
  recordsTmp_ =
      path_ + ".records.tmp." + std::to_string(writerPid());
  records_ = std::fopen(recordsTmp_.c_str(), "wb");
  if (records_ == nullptr) {
    throw support::Error("trace: cannot open for write: " + recordsTmp_);
  }
  buffer_.reserve(kWriterFlushBytes + 64);
}

BinaryWriter::~BinaryWriter() { abort(); }

std::uint32_t BinaryWriter::internFunction(std::string_view name) {
  for (std::size_t i = 0; i < functionNames_.size(); ++i) {
    if (functionNames_[i] == name) return static_cast<std::uint32_t>(i);
  }
  functionNames_.emplace_back(name);
  return static_cast<std::uint32_t>(functionNames_.size() - 1);
}

void BinaryWriter::append(const Event& event) {
  if (records_ == nullptr) {
    throw support::Error("trace: append on a finished/aborted writer: " +
                         path_);
  }
  appendEvent(buffer_, event, functionNames_.size());
  ++recordCount_;
  if (event.kind == EventKind::kPrimitive) ++primitiveCount_;
  if (buffer_.size() >= kWriterFlushBytes) spill();
}

void BinaryWriter::spill() {
  if (buffer_.empty()) return;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), records_) !=
      buffer_.size()) {
    throw support::Error("trace: write failed: " + recordsTmp_);
  }
  buffer_.clear();
}

void BinaryWriter::finish() {
  if (finished_ || records_ == nullptr) {
    throw support::Error("trace: finish on a finished/aborted writer: " +
                         path_);
  }
  try {
    spill();
    if (std::fclose(records_) != 0) {
      records_ = nullptr;
      throw support::Error("trace: write failed: " + recordsTmp_);
    }
    records_ = nullptr;

    // Assemble header + records into the final temp, then rename: the
    // destination only ever changes in one atomic step.
    const std::string finalTmp =
        path_ + ".tmp." + std::to_string(writerPid());
    std::string header;
    appendHeader(header, name_, functionNames_, recordCount_);
    std::FILE* out = std::fopen(finalTmp.c_str(), "wb");
    if (out == nullptr) {
      throw support::Error("trace: cannot open for write: " + finalTmp);
    }
    std::FILE* in = nullptr;
    const auto failAssembly = [&](const std::string& message) {
      if (in != nullptr) std::fclose(in);
      std::fclose(out);
      std::remove(finalTmp.c_str());
      throw support::Error(message);
    };
    if (std::fwrite(header.data(), 1, header.size(), out) !=
        header.size()) {
      failAssembly("trace: write failed: " + finalTmp);
    }
    in = std::fopen(recordsTmp_.c_str(), "rb");
    if (in == nullptr) {
      failAssembly("trace: cannot open for read: " + recordsTmp_);
    }
    std::vector<char> chunk(kWriterFlushBytes);
    for (;;) {
      const std::size_t got = std::fread(chunk.data(), 1, chunk.size(), in);
      if (got > 0 && std::fwrite(chunk.data(), 1, got, out) != got) {
        failAssembly("trace: write failed: " + finalTmp);
      }
      if (got < chunk.size()) {
        if (std::ferror(in) != 0) {
          failAssembly("trace: read failed: " + recordsTmp_);
        }
        break;
      }
    }
    std::fclose(in);
    if (std::fclose(out) != 0) {
      std::remove(finalTmp.c_str());
      throw support::Error("trace: write failed: " + finalTmp);
    }
    if (std::rename(finalTmp.c_str(), path_.c_str()) != 0) {
      std::remove(finalTmp.c_str());
      throw support::Error("trace: cannot rename " + finalTmp + " to " +
                           path_);
    }
    std::remove(recordsTmp_.c_str());
    finished_ = true;
  } catch (...) {
    abort();
    throw;
  }
}

void BinaryWriter::abort() noexcept {
  if (finished_) return;
  if (records_ != nullptr) {
    std::fclose(records_);
    records_ = nullptr;
  }
  std::remove(recordsTmp_.c_str());
  finished_ = true;
}

MappedTrace MappedTrace::open(const std::string& path, Backing backing) {
  MappedTrace trace;
  trace.path_ = path;

  bool useMmap = false;
#if SMALL_TRACE_HAVE_MMAP
  useMmap = backing == Backing::kDefault;
  if (useMmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw support::Error("trace: cannot open for read: " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw support::Error("trace: cannot stat: " + path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    // mmap(2) rejects a zero-length mapping with EINVAL; catching it here
    // keeps the error identical to the buffered backing's.
    if (size == 0) {
      ::close(fd);
      throw support::Error("trace: empty trace file: " + path);
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      throw support::Error("trace: mmap failed: " + path);
    }
    trace.data_ = static_cast<const unsigned char*>(base);
    trace.size_ = size;
    trace.mapped_ = true;
  }
#else
  (void)backing;
#endif
  if (!useMmap) {
    // Buffered backing (and the only one on platforms without mmap): read
    // the whole file into an owned buffer. Same decoder, same validation,
    // same error messages — only the zero-copy property is lost.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      throw support::Error("trace: cannot open for read: " + path);
    }
    const std::streamsize size = in.tellg();
    if (size < 0) {
      throw support::Error("trace: cannot stat: " + path);
    }
    if (size == 0) {
      throw support::Error("trace: empty trace file: " + path);
    }
    auto* buffer = new unsigned char[static_cast<std::size_t>(size)];
    in.seekg(0);
    if (!in.read(reinterpret_cast<char*>(buffer), size)) {
      delete[] buffer;
      throw support::Error("trace: read failed: " + path);
    }
    trace.data_ = buffer;
    trace.size_ = static_cast<std::size_t>(size);
    trace.mapped_ = false;
  }

  // --- header ---
  const unsigned char* data = trace.data_;
  const std::size_t total = trace.size_;
  if (total < sizeof(kBinaryTraceMagic) + 4) {
    fail(path, total, "truncated header (file smaller than magic+version)");
  }
  if (!looksBinary(reinterpret_cast<const char*>(data), total)) {
    fail(path, 0, "bad magic (not an SMTR binary trace)");
  }
  std::size_t offset = sizeof(kBinaryTraceMagic);
  std::uint32_t version = 0;
  for (unsigned shift = 0; shift < 32; shift += 8) {
    version |= static_cast<std::uint32_t>(data[offset++]) << shift;
  }
  if (version != kBinaryTraceVersion) {
    fail(path, sizeof(kBinaryTraceMagic),
         "unsupported version " + std::to_string(version) +
             " (this build reads version " +
             std::to_string(kBinaryTraceVersion) + ")");
  }
  trace.version_ = version;
  trace.name_ = readBlob(data, total, offset, path, "trace name");
  const std::uint64_t functionCount =
      readVarint(data, total, offset, path, "function-name count");
  // Each table entry occupies at least one byte (its length varint), so a
  // count exceeding the remaining bytes is structurally impossible.
  if (functionCount > total - offset) {
    fail(path, offset, "function-name count " +
                           std::to_string(functionCount) +
                           " exceeds remaining file bytes");
  }
  trace.functionNames_.reserve(static_cast<std::size_t>(functionCount));
  for (std::uint64_t i = 0; i < functionCount; ++i) {
    trace.functionNames_.push_back(
        readBlob(data, total, offset, path, "function name"));
  }
  trace.recordCount_ = readVarint(data, total, offset, path, "record count");
  trace.recordOffset_ = offset;
  if (trace.recordCount_ == 0 && offset != total) {
    fail(path, offset, "trailing bytes after empty record stream");
  }
  // A record is at least one tag byte.
  if (trace.recordCount_ > total - offset) {
    fail(path, offset, "record count " + std::to_string(trace.recordCount_) +
                           " exceeds remaining file bytes");
  }
  return trace;
}

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      version_(other.version_),
      name_(std::move(other.name_)),
      functionNames_(std::move(other.functionNames_)),
      recordCount_(other.recordCount_),
      recordOffset_(other.recordOffset_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    this->~MappedTrace();
    new (this) MappedTrace(std::move(other));
  }
  return *this;
}

MappedTrace::~MappedTrace() {
  if (data_ == nullptr) return;
#if SMALL_TRACE_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

Trace MappedTrace::toTrace() const {
  Trace trace;
  trace.name = name_;
  for (std::size_t id = 0; id < functionNames_.size(); ++id) {
    const std::uint32_t interned = trace.internFunction(functionNames_[id]);
    if (interned != id) {
      fail(path_, recordOffset_,
           "duplicate function name '" + functionNames_[id] +
               "' in name table");
    }
  }
  trace.events().reserve(static_cast<std::size_t>(recordCount_));
  BinaryDecoder decoder(*this);
  std::vector<Event> batch(1024);
  for (std::size_t k = decoder.decodeBatch(batch); k != 0;
       k = decoder.decodeBatch(batch)) {
    for (std::size_t i = 0; i < k; ++i) {
      trace.append(batch[i]);
    }
  }
  return trace;
}

BinaryDecoder::BinaryDecoder(const MappedTrace& trace)
    : trace_(&trace), offset_(trace.recordOffset_) {}

std::size_t BinaryDecoder::decodeBatch(std::vector<Event>& out) {
  const unsigned char* data = trace_->data_;
  const std::size_t size = trace_->size_;
  const std::string& path = trace_->path_;
  const std::uint64_t total = trace_->recordCount_;
  const std::size_t functionCount = trace_->functionNames_.size();

  std::size_t produced = 0;
  while (produced < out.size() && decoded_ < total) {
    if (offset_ >= size) {
      fail(path, offset_,
           "truncated record stream (" + std::to_string(decoded_) + " of " +
               std::to_string(total) + " records decoded)");
    }
    Event& event = out[produced];
    const unsigned char tag = data[offset_++];
    const unsigned kind = tag & 0x03;
    const unsigned high = tag >> 2;
    switch (kind) {
      case 0: {
        if (high >= kPrimitiveCount) {
          fail(path, offset_ - 1,
               "unknown primitive id " + std::to_string(high));
        }
        event.kind = EventKind::kPrimitive;
        event.primitive = static_cast<Primitive>(high);
        event.functionId = 0;
        event.argCount = 0;
        const std::uint64_t args =
            readVarint(data, size, offset_, path, "argument count");
        // Every object is at least three bytes, so this bounds the resize.
        if (args > (size - offset_) / 3) {
          fail(path, offset_, "argument count " + std::to_string(args) +
                                  " exceeds remaining file bytes");
        }
        event.result = readObject(data, size, offset_, path);
        event.args.resize(static_cast<std::size_t>(args));
        for (std::size_t i = 0; i < args; ++i) {
          event.args[i] = readObject(data, size, offset_, path);
        }
        break;
      }
      case 1:
      case 2: {
        if (high != 0) {
          fail(path, offset_ - 1,
               "malformed tag byte (nonzero primitive bits on a function "
               "record)");
        }
        event.kind = kind == 1 ? EventKind::kFunctionEnter
                               : EventKind::kFunctionExit;
        event.primitive = Primitive::kCar;
        event.args.clear();
        event.result = ObjectRecord{};
        const std::uint64_t functionId =
            readVarint(data, size, offset_, path, "function id");
        if (functionId >= functionCount) {
          fail(path, offset_,
               "function name index " + std::to_string(functionId) +
                   " out of range (name table holds " +
                   std::to_string(functionCount) + ")");
        }
        event.functionId = static_cast<std::uint32_t>(functionId);
        if (kind == 1) {
          const std::uint64_t argCount =
              readVarint(data, size, offset_, path, "argCount");
          if (argCount > 255) {
            fail(path, offset_, "argCount " + std::to_string(argCount) +
                                    " out of range (max 255)");
          }
          event.argCount = static_cast<std::uint8_t>(argCount);
        } else {
          event.argCount = 0;
        }
        break;
      }
      default:
        fail(path, offset_ - 1,
             "unknown record kind " + std::to_string(kind));
    }
    ++produced;
    ++decoded_;
  }
  if (decoded_ == total && offset_ != size) {
    fail(path, offset_, "trailing bytes after last record");
  }
  return produced;
}

}  // namespace small::trace
