#include "trace/io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "trace/binary.hpp"

namespace small::trace {

using support::ParseError;

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& message) {
  throw ParseError("trace line " + std::to_string(lineNo) + ": " + message);
}

// Function names are stored percent-encoded so names containing record
// separators (spaces, tabs) or characters that look like syntax ('#', '%')
// round-trip through the line-oriented format.
bool needsEscape(char c) {
  return c == '%' || c == '#' || c == ' ' || c == '\t' || c == '\n' ||
         c == '\r';
}

std::string escapeName(const std::string& name) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (needsEscape(c)) {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex[byte >> 4]);
      out.push_back(hex[byte & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string unescapeName(const std::string& token, std::size_t lineNo) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 2 >= token.size()) {
      fail(lineNo, "truncated escape in function name '" + token + "'");
    }
    const int hi = hexDigit(token[i + 1]);
    const int lo = hexDigit(token[i + 2]);
    if (hi < 0 || lo < 0) {
      fail(lineNo, "bad escape in function name '" + token + "'");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

// Strict unsigned parse of a complete token: rejects empty tokens, signs,
// non-digits, trailing garbage, and overflow.
std::uint64_t parseNumber(const std::string& token, std::size_t lineNo,
                          const char* what, std::uint64_t max) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || token.empty()) {
    fail(lineNo, std::string("non-numeric ") + what + " '" + token + "'");
  }
  if (value > max) {
    fail(lineNo, std::string(what) + " " + token + " out of range (max " +
                     std::to_string(max) + ")");
  }
  return value;
}

void writeObject(std::ostream& out, const ObjectRecord& object) {
  out << object.fingerprint << ":" << object.n << ":" << object.p << ":"
      << (object.isList ? 1 : 0);
}

ObjectRecord parseObject(const std::string& token, std::size_t lineNo) {
  // An object is exactly four ':'-separated unsigned fields: fp:n:p:l.
  std::string parts[4];
  std::size_t part = 0;
  for (const char c : token) {
    if (c == ':') {
      if (++part == 4) {
        fail(lineNo, "malformed object record '" + token + "'");
      }
    } else {
      parts[part].push_back(c);
    }
  }
  if (part != 3) {
    fail(lineNo, "truncated object record '" + token + "'");
  }
  ObjectRecord object;
  object.fingerprint =
      parseNumber(parts[0], lineNo, "object fingerprint", ~0ull);
  object.n = static_cast<std::uint32_t>(
      parseNumber(parts[1], lineNo, "object n field", 0xFFFFFFFFull));
  object.p = static_cast<std::uint32_t>(
      parseNumber(parts[2], lineNo, "object p field", 0xFFFFFFFFull));
  const std::uint64_t isList =
      parseNumber(parts[3], lineNo, "object list flag", 1);
  object.isList = isList != 0;
  return object;
}

}  // namespace

void saveTextHeader(std::ostream& out, const std::string& traceName) {
  out << "# name " << traceName << "\n";
}

void saveTextEvent(std::ostream& out, const Event& event,
                   const std::string& functionName) {
  switch (event.kind) {
    case EventKind::kPrimitive: {
      out << "P " << primitiveName(event.primitive) << " ";
      writeObject(out, event.result);
      for (const ObjectRecord& arg : event.args) {
        out << " ";
        writeObject(out, arg);
      }
      out << "\n";
      break;
    }
    case EventKind::kFunctionEnter:
      out << "E " << escapeName(functionName) << " "
          << static_cast<int>(event.argCount) << "\n";
      break;
    case EventKind::kFunctionExit:
      out << "X " << escapeName(functionName) << "\n";
      break;
  }
}

void save(const Trace& trace, std::ostream& out) {
  saveTextHeader(out, trace.name);
  for (const Event& event : trace.events()) {
    saveTextEvent(out, event,
                  event.kind == EventKind::kPrimitive
                      ? std::string()
                      : trace.functionName(event.functionId));
  }
}

Trace load(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "#") {
      std::string key;
      fields >> key;
      if (key == "name") {
        std::string value;
        std::getline(fields, value);
        if (!value.empty() && value.front() == ' ') value.erase(0, 1);
        trace.name = value;
      }
      continue;
    }
    Event event;
    if (tag == "P") {
      event.kind = EventKind::kPrimitive;
      std::string name;
      fields >> name;
      const auto primitive = primitiveFromName(name);
      if (!primitive) {
        fail(lineNo, "unknown primitive '" + name + "'");
      }
      event.primitive = *primitive;
      std::string token;
      bool first = true;
      while (fields >> token) {
        if (first) {
          event.result = parseObject(token, lineNo);
          first = false;
        } else {
          event.args.push_back(parseObject(token, lineNo));
        }
      }
      if (first) {
        fail(lineNo, "primitive record missing result");
      }
    } else if (tag == "E") {
      event.kind = EventKind::kFunctionEnter;
      std::string name;
      std::string countToken;
      fields >> name >> countToken;
      if (name.empty() || countToken.empty()) {
        fail(lineNo, "truncated function-enter record");
      }
      std::string extra;
      if (fields >> extra) {
        fail(lineNo, "trailing garbage '" + extra +
                         "' after function-enter record");
      }
      event.functionId = trace.internFunction(unescapeName(name, lineNo));
      event.argCount = static_cast<std::uint8_t>(
          parseNumber(countToken, lineNo, "argCount", 255));
    } else if (tag == "X") {
      event.kind = EventKind::kFunctionExit;
      std::string name;
      fields >> name;
      if (name.empty()) {
        fail(lineNo, "truncated function-exit record");
      }
      std::string extra;
      if (fields >> extra) {
        fail(lineNo, "trailing garbage '" + extra +
                         "' after function-exit record");
      }
      event.functionId = trace.internFunction(unescapeName(name, lineNo));
    } else {
      fail(lineNo, "unknown record tag '" + tag + "'");
    }
    trace.append(std::move(event));
  }
  return trace;
}

const char* fileFormatName(FileFormat format) {
  return format == FileFormat::kText ? "text" : "binary";
}

void saveFile(const Trace& trace, const std::string& path,
              FileFormat format) {
  if (format == FileFormat::kBinary) {
    saveBinaryFile(trace, path);
    return;
  }
  std::ofstream out(path);
  if (!out) throw support::Error("trace: cannot open for write: " + path);
  save(trace, out);
  out.flush();
  if (!out) throw support::Error("trace: write failed: " + path);
}

FileFormat sniffFileFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw support::Error("trace: cannot open for read: " + path);
  char magic[sizeof(kBinaryTraceMagic)] = {};
  in.read(magic, sizeof(magic));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == 0) throw support::Error("trace: empty trace file: " + path);
  return looksBinary(magic, got) ? FileFormat::kBinary : FileFormat::kText;
}

Trace loadFile(const std::string& path) {
  if (sniffFileFormat(path) == FileFormat::kBinary) {
    return MappedTrace::open(path).toTrace();
  }
  std::ifstream in(path);
  if (!in) throw support::Error("trace: cannot open for read: " + path);
  try {
    return load(in);
  } catch (const ParseError& error) {
    // The line-oriented loader reports "trace line N: ..."; prefix the
    // path so a failure in a multi-file pipeline names its file.
    throw ParseError("trace file '" + path + "': " + error.what());
  }
}

}  // namespace small::trace
