#include "trace/io.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace small::trace {

using support::ParseError;

namespace {

void writeObject(std::ostream& out, const ObjectRecord& object) {
  out << object.fingerprint << ":" << object.n << ":" << object.p << ":"
      << (object.isList ? 1 : 0);
}

ObjectRecord parseObject(const std::string& token) {
  ObjectRecord object;
  std::istringstream in(token);
  char sep1 = 0, sep2 = 0, sep3 = 0;
  int isList = 0;
  in >> object.fingerprint >> sep1 >> object.n >> sep2 >> object.p >> sep3 >>
      isList;
  if (!in || sep1 != ':' || sep2 != ':' || sep3 != ':') {
    throw ParseError("trace: malformed object record '" + token + "'");
  }
  object.isList = isList != 0;
  return object;
}

}  // namespace

void save(const Trace& trace, std::ostream& out) {
  out << "# name " << trace.name << "\n";
  for (const Event& event : trace.events()) {
    switch (event.kind) {
      case EventKind::kPrimitive: {
        out << "P " << primitiveName(event.primitive) << " ";
        writeObject(out, event.result);
        for (const ObjectRecord& arg : event.args) {
          out << " ";
          writeObject(out, arg);
        }
        out << "\n";
        break;
      }
      case EventKind::kFunctionEnter:
        out << "E " << trace.functionName(event.functionId) << " "
            << static_cast<int>(event.argCount) << "\n";
        break;
      case EventKind::kFunctionExit:
        out << "X " << trace.functionName(event.functionId) << "\n";
        break;
    }
  }
}

Trace load(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "#") {
      std::string key;
      fields >> key;
      if (key == "name") {
        std::string value;
        std::getline(fields, value);
        if (!value.empty() && value.front() == ' ') value.erase(0, 1);
        trace.name = value;
      }
      continue;
    }
    Event event;
    if (tag == "P") {
      event.kind = EventKind::kPrimitive;
      std::string name;
      fields >> name;
      const auto primitive = primitiveFromName(name);
      if (!primitive) {
        throw ParseError("trace line " + std::to_string(lineNo) +
                         ": unknown primitive '" + name + "'");
      }
      event.primitive = *primitive;
      std::string token;
      bool first = true;
      while (fields >> token) {
        if (first) {
          event.result = parseObject(token);
          first = false;
        } else {
          event.args.push_back(parseObject(token));
        }
      }
      if (first) {
        throw ParseError("trace line " + std::to_string(lineNo) +
                         ": primitive record missing result");
      }
    } else if (tag == "E") {
      event.kind = EventKind::kFunctionEnter;
      std::string name;
      int argCount = 0;
      fields >> name >> argCount;
      if (!fields) {
        throw ParseError("trace line " + std::to_string(lineNo) +
                         ": malformed function-enter record");
      }
      event.functionId = trace.internFunction(name);
      event.argCount = static_cast<std::uint8_t>(argCount);
    } else if (tag == "X") {
      event.kind = EventKind::kFunctionExit;
      std::string name;
      fields >> name;
      event.functionId = trace.internFunction(name);
    } else {
      throw ParseError("trace line " + std::to_string(lineNo) +
                       ": unknown record tag '" + tag + "'");
    }
    trace.append(std::move(event));
  }
  return trace;
}

void saveFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw support::Error("trace: cannot open for write: " + path);
  save(trace, out);
}

Trace loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw support::Error("trace: cannot open for read: " + path);
  return load(in);
}

}  // namespace small::trace
