#include "heap/address_model.hpp"

// AddressModel is header-only today; this translation unit anchors the
// library target and reserves a home for future out-of-line logic.
