// The unified heap-backend abstraction: every Chapter 2 list-memory
// representation behind one cell-level interface, so the functional SMALL
// machine (small/machine.*) and the §4.3.4 emulator can run on any of
// them and representation becomes a measurable experimental axis.
//
// The contract is the §4.3.3 heap controller's: allocate/free single
// cons cells, split an object into its car/cdr words (freeing the cell),
// merge two words back into a cell (the Fig 4.8 compression write-back),
// recursively free whole objects (the queue-serviced §4.3.3.1 operation),
// and encode/decode complete s-expressions. Each backend counts its
// *physical* activity in a HeapStats block — cell allocations, frees,
// reads/writes (heap touches), split/merge counts, live-cell occupancy —
// which is where the representations differ: a cdr-coded run answers cdr
// by address arithmetic where two-pointer cells chase a pointer, and a
// linked-vector backend pays indirection elements at vector boundaries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "heap/word.hpp"
#include "sexpr/arena.hpp"

namespace small::heap {

/// Physical-activity counters, maintained by every backend.
struct HeapStats {
  std::uint64_t allocs = 0;   ///< cons-cell allocations (incl. merges)
  std::uint64_t frees = 0;    ///< physical cells returned to the free pool
  std::uint64_t splits = 0;   ///< §4.3.3.2 split operations
  std::uint64_t merges = 0;   ///< §4.3.3.2 merge operations
  std::uint64_t reads = 0;    ///< heap cell/word reads
  std::uint64_t writes = 0;   ///< heap cell/word writes
  std::uint64_t liveCells = 0;      ///< physical cells currently occupied
  std::uint64_t peakLiveCells = 0;  ///< max of liveCells over the run

  /// Total heap touches (the §4.3.2.5 heap-controller occupancy driver).
  std::uint64_t touches() const { return reads + writes; }
};

/// Abstract heap backend. Cell references are opaque indices; words are
/// the representation-free `HeapWord` currency. Implementations may use
/// more or fewer physical cells per cons than the logical structure
/// suggests (vectorized runs, cdr-normal pairs, indirection elements);
/// the stats block records the physical truth.
class HeapBackend {
 public:
  using CellRef = std::uint64_t;
  static constexpr CellRef kNull = ~0ull;

  struct SplitResult {
    HeapWord car;
    HeapWord cdr;
  };

  virtual ~HeapBackend() = default;

  /// Representation name for reports ("two-pointer", "cdr-coded", ...).
  virtual const char* name() const = 0;

  /// Allocate one cons cell.
  virtual CellRef allocate(HeapWord car, HeapWord cdr) = 0;

  /// Return one cons cell to the free pool (not its substructure).
  virtual void free(CellRef cell) = 0;

  /// Recursively free the object rooted at `cell` (§4.3.3.1 queue-serviced
  /// free). Returns physical cells reclaimed; shared substructure already
  /// reclaimed is skipped.
  virtual std::uint64_t freeObject(CellRef cell) = 0;

  virtual HeapWord car(CellRef cell) const = 0;
  virtual HeapWord cdr(CellRef cell) const = 0;
  virtual void setCar(CellRef cell, HeapWord value) = 0;
  virtual void setCdr(CellRef cell, HeapWord value) = 0;

  /// §4.3.3.2 split: return both halves and free the cell.
  virtual SplitResult split(CellRef cell) = 0;

  /// §4.3.3.2 merge: inverse of split (an allocation, counted as a merge).
  virtual CellRef merge(HeapWord car, HeapWord cdr) = 0;

  /// Copy an s-expression into the heap using the representation's
  /// natural layout (vectorized runs for coded backends); returns the
  /// root word. Atoms encode as immediate words without heap activity.
  virtual HeapWord encode(const sexpr::Arena& arena, sexpr::NodeRef root) = 0;

  struct CollectResult {
    std::uint64_t reclaimed = 0;  ///< physical cells freed
    std::uint64_t traced = 0;     ///< live cons cells marked
  };

  /// Stop-the-world mark-sweep over the *physical* cell store: mark
  /// everything reachable from the given root words, free every other
  /// occupied cell. Representation metadata participates — forwarding
  /// cells (invisible pointers, indirection elements) survive with the
  /// object that forwards through them, cdr-error/cdr-slot cells with
  /// their pair head — so reads/writes land in stats() with the same
  /// touch accounting as mutator activity. Used by SmallMachine when
  /// Config::gcPolicy defers its refcount-driven frees to a collector.
  /// Equivalent to gcBegin() + one unbounded gcStep().
  CollectResult collectGarbage(const std::vector<HeapWord>& roots);

  // --- resumable collection driver ---
  //
  // The same mark-sweep as collectGarbage, but startable and then driven
  // in bounded touch-unit slices with the mutator running between slices
  // (SmallMachine's incremental policy). Between gcBegin and the final
  // gcStep the backend is in an active cycle: allocations are recorded
  // black (they survive the cycle), split() shades its result words and
  // setCar/setCdr shade overwritten pointers — the snapshot-at-the-
  // beginning invariant — so everything live at gcBegin or allocated
  // since survives. Garbage dying mid-cycle floats to the next cycle.

  /// Start a collection cycle from the given roots. `youngOnly` restricts
  /// the cycle to cells recorded since the last promotion (requires
  /// setYoungTracking(true)); old cells terminate the trace and the sweep
  /// visits only young cells. Throws if a cycle is already active.
  void gcBegin(const std::vector<HeapWord>& roots, bool youngOnly = false);

  /// Run one slice of at most `touchBudget` heap touches (0 = unbounded);
  /// accumulates into `result`. Returns true when the cycle completed.
  bool gcStep(std::uint64_t touchBudget, CollectResult& result);

  /// Is a collection cycle in flight?
  bool gcActive() const { return gcPhase_ != GcPhase::kIdle; }

  // --- generational support ---

  /// Record subsequently allocated cells as "young" so collectYoung can
  /// sweep just them. Every completed collection (young or full)
  /// promotes: the young record and remembered set are cleared.
  void setYoungTracking(bool enabled) { youngTracking_ = enabled; }

  /// Cell slots recorded young since the last promotion (an allocation
  /// count, the minor-collection trigger).
  std::uint64_t youngCells() const { return youngList_.size(); }

  /// Synchronous minor collection: trace roots and the remembered set
  /// into the young generation only, sweep only young cells, promote the
  /// survivors. Old cells are conservatively live until collectGarbage.
  CollectResult collectYoung(const std::vector<HeapWord>& roots);

  /// Rebuild an s-expression from heap structure. Implemented once over
  /// the virtual car/cdr so every backend's decode pays its own touch
  /// profile.
  sexpr::NodeRef decode(sexpr::Arena& arena, HeapWord root) const;

  /// Physical cells ever allocated (high-water of the cell store).
  virtual std::uint64_t cellsAllocated() const = 0;
  /// Physical cells currently live.
  std::uint64_t cellsLive() const { return stats_.liveCells; }

  const HeapStats& stats() const { return stats_; }
  /// Restore a previously captured stats block. Lets read-only diagnostic
  /// walks (the collector's live-set fingerprint) run over the virtual
  /// car/cdr without perturbing reported reads or pause figures.
  void restoreStats(const HeapStats& snapshot) const { stats_ = snapshot; }
  void resetStats() {
    const std::uint64_t live = stats_.liveCells;
    stats_ = HeapStats{};
    stats_.liveCells = live;
    stats_.peakLiveCells = live;
  }

 protected:
  void noteAlloc(std::uint64_t cells) {
    stats_.liveCells += cells;
    if (stats_.liveCells > stats_.peakLiveCells) {
      stats_.peakLiveCells = stats_.liveCells;
    }
  }
  void noteFree(std::uint64_t cells) {
    stats_.frees += cells;
    stats_.liveCells -= cells;
  }

  // --- collection SPI (the per-representation mark/trace/sweep bodies;
  //     the base class owns the driver loop and tri-color state) ---

  /// Mark `cell` and push it gray, chasing forwarding chains (invisible
  /// pointers, indirection elements) with the representation's touch
  /// accounting. Must return without effect for refs beyond the cycle's
  /// mark-table snapshot (implicitly black), freed cells (a stale gray or
  /// shaded ref), and — in a young-only cycle — old cells.
  virtual void gcVisit(CellRef cell) = 0;

  /// Trace one gray cell's children through gcVisit, with stats identical
  /// to the stop-the-world trace. Must return without effect if the cell
  /// was freed after it went gray.
  virtual void gcTraceOne(CellRef cell, CollectResult& result) = 0;

  /// Sweep one cell-store position: skip freed or marked, free the rest.
  /// Stats identical to one iteration of the stop-the-world sweep.
  virtual void gcSweepAt(CellRef cell, CollectResult& result) = 0;

  // --- helpers the backends call at their mutation points ---

  /// Record `slots` freshly allocated cells starting at `head` (a cons,
  /// an adjacent pair, or one encoded-run element each): young-records
  /// them, and during an active cycle marks them black (a reused ref
  /// must not be swept; refs beyond the mark-table snapshot already
  /// are). During marking the head also goes gray so stored pointers
  /// get traced.
  void gcNoteAlloc(CellRef head, std::uint64_t slots) {
    if (youngTracking_) {
      for (std::uint64_t i = 0; i < slots; ++i) {
        const CellRef ref = head + i;
        if (ref >= youngFlag_.size()) youngFlag_.resize(ref + 1, false);
        youngFlag_[ref] = true;
        youngList_.push_back(ref);
      }
    }
    if (gcPhase_ == GcPhase::kIdle) return;
    for (std::uint64_t i = 0; i < slots; ++i) {
      if (head + i < gcMarked_.size()) gcMarked_[head + i] = true;
    }
    if (gcPhase_ == GcPhase::kMark && head < gcMarked_.size()) {
      gcGray_.push_back(head);
    }
  }

  /// SATB shade: a pointer word is being overwritten or its holding cell
  /// destroyed (split); keep its target in the snapshot's live set.
  void gcShadeWord(HeapWord word) {
    if (gcPhase_ != GcPhase::kMark || !word.isPointer()) return;
    gcVisit(word.payload);
  }

  /// Is the mark phase active (for backends that must read the old value
  /// of a field only when a shade would consume it)?
  bool gcMarking() const { return gcPhase_ == GcPhase::kMark; }

  /// Young membership (O(1) flag test).
  bool isYoung(CellRef cell) const {
    return cell < youngFlag_.size() && youngFlag_[cell];
  }

  /// Remembered-set entry: `target` is a young cell newly referenced
  /// from an old cell; minor collections treat it as a root. (Targets,
  /// not sources, are remembered: old cells are then never traced, and
  /// an overwritten old→young edge merely floats its target one minor
  /// cycle.) No-op unless young tracking is on.
  void gcRemember(CellRef target) {
    if (!youngTracking_ || !isYoung(target)) return;
    if (target >= rememberedFlag_.size()) {
      rememberedFlag_.resize(target + 1, false);
    }
    if (rememberedFlag_[target]) return;
    rememberedFlag_[target] = true;
    remembered_.push_back(target);
  }

  bool gcYoungOnly() const { return gcYoungOnly_; }

  std::vector<bool> gcMarked_;       ///< cycle mark table (snapshot-sized)
  std::vector<CellRef> gcGray_;      ///< marked, children not yet traced

  mutable HeapStats stats_;

 private:
  enum class GcPhase : std::uint8_t { kIdle, kMark, kSweep };

  void gcPromote() {
    youngList_.clear();
    youngFlag_.clear();
    remembered_.clear();
    rememberedFlag_.clear();
  }

  GcPhase gcPhase_ = GcPhase::kIdle;
  bool gcYoungOnly_ = false;
  CellRef gcSweepCursor_ = 0;        ///< full sweep: next cell-store position
  std::size_t gcYoungSweepPos_ = 0;  ///< young sweep: next youngList_ index
  bool youngTracking_ = false;
  std::vector<CellRef> youngList_;   ///< young refs in allocation order
  std::vector<bool> youngFlag_;
  std::vector<CellRef> remembered_;  ///< young cells referenced from old ones
  std::vector<bool> rememberedFlag_;
};

/// The selectable representations.
enum class HeapBackendKind : std::uint8_t {
  kTwoPointer,    ///< Fig 2.6 two-pointer cells (heap/two_pointer.*)
  kCdrCoded,      ///< Fig 2.8 MIT-style cdr coding with invisible pointers
  kLinkedVector,  ///< Fig 2.7 linked vectors with indirection elements
};

inline constexpr HeapBackendKind kAllHeapBackendKinds[] = {
    HeapBackendKind::kTwoPointer, HeapBackendKind::kCdrCoded,
    HeapBackendKind::kLinkedVector};

const char* heapBackendName(HeapBackendKind kind);

struct HeapBackendOptions {
  /// Linked-vector backend: elements per vector (>= 3 so a cdr pair plus
  /// an indirection always fits).
  std::uint32_t vectorSize = 8;
};

std::unique_ptr<HeapBackend> makeHeapBackend(HeapBackendKind kind,
                                             const HeapBackendOptions&
                                                 options = {});

}  // namespace small::heap
