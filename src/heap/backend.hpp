// The unified heap-backend abstraction: every Chapter 2 list-memory
// representation behind one cell-level interface, so the functional SMALL
// machine (small/machine.*) and the §4.3.4 emulator can run on any of
// them and representation becomes a measurable experimental axis.
//
// The contract is the §4.3.3 heap controller's: allocate/free single
// cons cells, split an object into its car/cdr words (freeing the cell),
// merge two words back into a cell (the Fig 4.8 compression write-back),
// recursively free whole objects (the queue-serviced §4.3.3.1 operation),
// and encode/decode complete s-expressions. Each backend counts its
// *physical* activity in a HeapStats block — cell allocations, frees,
// reads/writes (heap touches), split/merge counts, live-cell occupancy —
// which is where the representations differ: a cdr-coded run answers cdr
// by address arithmetic where two-pointer cells chase a pointer, and a
// linked-vector backend pays indirection elements at vector boundaries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "heap/word.hpp"
#include "sexpr/arena.hpp"

namespace small::heap {

/// Physical-activity counters, maintained by every backend.
struct HeapStats {
  std::uint64_t allocs = 0;   ///< cons-cell allocations (incl. merges)
  std::uint64_t frees = 0;    ///< physical cells returned to the free pool
  std::uint64_t splits = 0;   ///< §4.3.3.2 split operations
  std::uint64_t merges = 0;   ///< §4.3.3.2 merge operations
  std::uint64_t reads = 0;    ///< heap cell/word reads
  std::uint64_t writes = 0;   ///< heap cell/word writes
  std::uint64_t liveCells = 0;      ///< physical cells currently occupied
  std::uint64_t peakLiveCells = 0;  ///< max of liveCells over the run

  /// Total heap touches (the §4.3.2.5 heap-controller occupancy driver).
  std::uint64_t touches() const { return reads + writes; }
};

/// Abstract heap backend. Cell references are opaque indices; words are
/// the representation-free `HeapWord` currency. Implementations may use
/// more or fewer physical cells per cons than the logical structure
/// suggests (vectorized runs, cdr-normal pairs, indirection elements);
/// the stats block records the physical truth.
class HeapBackend {
 public:
  using CellRef = std::uint64_t;
  static constexpr CellRef kNull = ~0ull;

  struct SplitResult {
    HeapWord car;
    HeapWord cdr;
  };

  virtual ~HeapBackend() = default;

  /// Representation name for reports ("two-pointer", "cdr-coded", ...).
  virtual const char* name() const = 0;

  /// Allocate one cons cell.
  virtual CellRef allocate(HeapWord car, HeapWord cdr) = 0;

  /// Return one cons cell to the free pool (not its substructure).
  virtual void free(CellRef cell) = 0;

  /// Recursively free the object rooted at `cell` (§4.3.3.1 queue-serviced
  /// free). Returns physical cells reclaimed; shared substructure already
  /// reclaimed is skipped.
  virtual std::uint64_t freeObject(CellRef cell) = 0;

  virtual HeapWord car(CellRef cell) const = 0;
  virtual HeapWord cdr(CellRef cell) const = 0;
  virtual void setCar(CellRef cell, HeapWord value) = 0;
  virtual void setCdr(CellRef cell, HeapWord value) = 0;

  /// §4.3.3.2 split: return both halves and free the cell.
  virtual SplitResult split(CellRef cell) = 0;

  /// §4.3.3.2 merge: inverse of split (an allocation, counted as a merge).
  virtual CellRef merge(HeapWord car, HeapWord cdr) = 0;

  /// Copy an s-expression into the heap using the representation's
  /// natural layout (vectorized runs for coded backends); returns the
  /// root word. Atoms encode as immediate words without heap activity.
  virtual HeapWord encode(const sexpr::Arena& arena, sexpr::NodeRef root) = 0;

  struct CollectResult {
    std::uint64_t reclaimed = 0;  ///< physical cells freed
    std::uint64_t traced = 0;     ///< live cons cells marked
  };

  /// Stop-the-world mark-sweep over the *physical* cell store: mark
  /// everything reachable from the given root words, free every other
  /// occupied cell. Representation metadata participates — forwarding
  /// cells (invisible pointers, indirection elements) survive with the
  /// object that forwards through them, cdr-error/cdr-slot cells with
  /// their pair head — so reads/writes land in stats() with the same
  /// touch accounting as mutator activity. Used by SmallMachine when
  /// Config::gcPolicy defers its refcount-driven frees to a collector.
  virtual CollectResult collectGarbage(const std::vector<HeapWord>& roots) = 0;

  /// Rebuild an s-expression from heap structure. Implemented once over
  /// the virtual car/cdr so every backend's decode pays its own touch
  /// profile.
  sexpr::NodeRef decode(sexpr::Arena& arena, HeapWord root) const;

  /// Physical cells ever allocated (high-water of the cell store).
  virtual std::uint64_t cellsAllocated() const = 0;
  /// Physical cells currently live.
  std::uint64_t cellsLive() const { return stats_.liveCells; }

  const HeapStats& stats() const { return stats_; }
  void resetStats() {
    const std::uint64_t live = stats_.liveCells;
    stats_ = HeapStats{};
    stats_.liveCells = live;
    stats_.peakLiveCells = live;
  }

 protected:
  void noteAlloc(std::uint64_t cells) {
    stats_.liveCells += cells;
    if (stats_.liveCells > stats_.peakLiveCells) {
      stats_.peakLiveCells = stats_.liveCells;
    }
  }
  void noteFree(std::uint64_t cells) {
    stats_.frees += cells;
    stats_.liveCells -= cells;
  }

  mutable HeapStats stats_;
};

/// The selectable representations.
enum class HeapBackendKind : std::uint8_t {
  kTwoPointer,    ///< Fig 2.6 two-pointer cells (heap/two_pointer.*)
  kCdrCoded,      ///< Fig 2.8 MIT-style cdr coding with invisible pointers
  kLinkedVector,  ///< Fig 2.7 linked vectors with indirection elements
};

inline constexpr HeapBackendKind kAllHeapBackendKinds[] = {
    HeapBackendKind::kTwoPointer, HeapBackendKind::kCdrCoded,
    HeapBackendKind::kLinkedVector};

const char* heapBackendName(HeapBackendKind kind);

struct HeapBackendOptions {
  /// Linked-vector backend: elements per vector (>= 3 so a cdr pair plus
  /// an indirection always fits).
  std::uint32_t vectorSize = 8;
};

std::unique_ptr<HeapBackend> makeHeapBackend(HeapBackendKind kind,
                                             const HeapBackendOptions&
                                                 options = {});

}  // namespace small::heap
