// Structure-coded list representation: CDAR coding / BLAST-style exception
// tables (§2.3.3.2, Fig 2.10).
//
// Each symbol of a list is stored as a (code, value) tuple where the code
// spells the car/cdr path from the list root to the symbol — 0 for car,
// 1 for cdr, read left to right. Only the n symbols are stored (against
// n + p cells for pointer representations), and any element is addressable
// without touching the others; the price is that car/cdr/split become table
// scans that strip a code prefix (§4.3.3.2: "The more compact a
// representation scheme is the more difficult it becomes to split").
#pragma once

#include <cstdint>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::heap {

/// A car/cdr path of up to 64 steps, most significant step first.
struct CdarCode {
  std::uint64_t bits = 0;  ///< 0 = car, 1 = cdr, packed from the LSB end
  std::uint8_t length = 0;

  /// Prepend a step (used while unwinding the encoder's recursion).
  CdarCode prepend(bool cdrStep) const;
  /// First step of the path (false = car, true = cdr).
  bool firstStep() const;
  /// Path with the first step removed.
  CdarCode stripFirst() const;

  bool operator==(const CdarCode&) const = default;

  /// Render as the thesis prints it, e.g. "010111".
  std::string toString() const;
};

class CdarTable {
 public:
  struct Entry {
    CdarCode code;
    // Value payload: a symbol id, an integer, or nil.
    enum class Tag : std::uint8_t { kNil, kSymbol, kInteger } tag = Tag::kNil;
    std::uint64_t payload = 0;
  };

  /// Encode a whole s-expression as one exception table.
  static CdarTable encode(const sexpr::Arena& arena, sexpr::NodeRef root);

  /// Rebuild the s-expression.
  sexpr::NodeRef decode(sexpr::Arena& arena) const;

  /// The car (entries whose code starts with 0, prefix stripped) — §4.3.3.2
  /// split, one half. `copies` accumulates entry-copy work.
  CdarTable car(std::uint64_t* copies = nullptr) const;
  /// The cdr (entries whose code starts with 1, prefix stripped).
  CdarTable cdr(std::uint64_t* copies = nullptr) const;

  /// Associative probe: the entry with exactly `code`, if present. This is
  /// the BLAST-style O(1)-by-hardware access; here a scan with a counter.
  const Entry* probe(const CdarCode& code) const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace small::heap
