#include "heap/conc.hpp"

#include "support/error.hpp"

namespace small::heap {

using support::Error;
using support::EvalError;

const ConcHeap::Descriptor& ConcHeap::at(DescRef ref) const {
  if (ref >= descriptors_.size()) throw Error("ConcHeap: bad descriptor");
  return descriptors_[ref];
}

ConcHeap::DescRef ConcHeap::makeTuple(const std::vector<Element>& elements) {
  Descriptor desc;
  desc.isConc = false;
  desc.start = elements_.size();
  desc.length = elements.size();
  elements_.insert(elements_.end(), elements.begin(), elements.end());
  descriptors_.push_back(desc);
  ++tuples_;
  return static_cast<DescRef>(descriptors_.size() - 1);
}

ConcHeap::DescRef ConcHeap::encode(const sexpr::Arena& arena,
                                   sexpr::NodeRef list) {
  if (arena.isAtom(list) && !arena.isNil(list)) {
    throw EvalError("ConcHeap: encode expects a list");
  }
  std::vector<Element> elements;
  for (sexpr::NodeRef c = list; !arena.isNil(c); c = arena.cdr(c)) {
    if (arena.isAtom(c)) {
      throw EvalError("ConcHeap: dotted lists unsupported");
    }
    const sexpr::NodeRef head = arena.car(c);
    Element element;
    switch (arena.kind(head)) {
      case sexpr::NodeKind::kNil:
        element.tag = Element::Tag::kNil;
        break;
      case sexpr::NodeKind::kSymbol:
        element.tag = Element::Tag::kSymbol;
        element.payload = arena.symbolId(head);
        break;
      case sexpr::NodeKind::kInteger:
        element.tag = Element::Tag::kInteger;
        element.payload = static_cast<std::uint64_t>(arena.integerValue(head));
        break;
      case sexpr::NodeKind::kCons:
        element.tag = Element::Tag::kList;
        element.payload = encode(arena, head);
        break;
    }
    elements.push_back(element);
  }
  return makeTuple(elements);
}

ConcHeap::DescRef ConcHeap::conc(DescRef left, DescRef right) {
  Descriptor desc;
  desc.isConc = true;
  desc.left = left;
  desc.right = right;
  desc.length = at(left).length + at(right).length;
  descriptors_.push_back(desc);
  ++concCells_;
  return static_cast<DescRef>(descriptors_.size() - 1);
}

std::uint64_t ConcHeap::length(DescRef ref) const { return at(ref).length; }

ConcHeap::Element ConcHeap::elementAt(DescRef ref,
                                      std::uint64_t index) const {
  const Descriptor* desc = &at(ref);
  if (index >= desc->length) throw Error("ConcHeap: index out of range");
  while (desc->isConc) {
    const Descriptor& left = at(desc->left);
    if (index < left.length) {
      desc = &left;
    } else {
      index -= left.length;
      desc = &at(desc->right);
    }
  }
  return elements_[desc->start + index];
}

sexpr::NodeRef ConcHeap::decode(sexpr::Arena& arena, DescRef ref) const {
  const std::uint64_t n = length(ref);
  sexpr::NodeRef result = sexpr::kNilRef;
  for (std::uint64_t i = n; i-- > 0;) {
    const Element element = elementAt(ref, i);
    sexpr::NodeRef head = sexpr::kNilRef;
    switch (element.tag) {
      case Element::Tag::kNil:
        head = sexpr::kNilRef;
        break;
      case Element::Tag::kSymbol:
        head = arena.symbol(static_cast<sexpr::SymbolId>(element.payload));
        break;
      case Element::Tag::kInteger:
        head = arena.integer(static_cast<std::int64_t>(element.payload));
        break;
      case Element::Tag::kList:
        head = decode(arena, static_cast<DescRef>(element.payload));
        break;
    }
    result = arena.cons(head, result);
  }
  return result;
}

}  // namespace small::heap
