#include "heap/cdr_coded.hpp"

#include "support/error.hpp"

namespace small::heap {

using support::Error;
using support::SimulationError;

const CdrCodedHeap::Cell& CdrCodedHeap::at(CellRef cell) const {
  if (cell >= cells_.size()) throw Error("CdrCodedHeap: bad cell ref");
  return cells_[cell];
}

CdrCodedHeap::Cell& CdrCodedHeap::at(CellRef cell) {
  if (cell >= cells_.size()) throw Error("CdrCodedHeap: bad cell ref");
  return cells_[cell];
}

CdrCodedHeap::CellRef CdrCodedHeap::resolve(CellRef cell) const {
  // Invisible pointers are dereferenced "by the hardware", i.e. for free in
  // the programming model but costing a dependent read each.
  while (at(cell).car.tag == CdrWord::Tag::kInvisible) {
    ++reads_;
    ++dependentReads_;
    cell = at(cell).car.payload;
  }
  return cell;
}

CdrWord CdrCodedHeap::encode(const sexpr::Arena& arena, sexpr::NodeRef root) {
  switch (arena.kind(root)) {
    case sexpr::NodeKind::kNil:
      return CdrWord::nil();
    case sexpr::NodeKind::kSymbol:
      return CdrWord::symbol(arena.symbolId(root));
    case sexpr::NodeKind::kInteger:
      return CdrWord::integer(arena.integerValue(root));
    case sexpr::NodeKind::kCons:
      break;
  }

  // Gather the spine, then lay the run out in consecutive cells. Element
  // cars that are themselves lists are encoded first (their runs precede
  // this one; pointers still work).
  std::vector<sexpr::NodeRef> spine;
  sexpr::NodeRef cursor = root;
  while (arena.kind(cursor) == sexpr::NodeKind::kCons) {
    spine.push_back(cursor);
    cursor = arena.cdr(cursor);
  }
  const bool properList = arena.isNil(cursor);

  std::vector<CdrWord> heads;
  heads.reserve(spine.size());
  for (const sexpr::NodeRef node : spine) {
    heads.push_back(encode(arena, arena.car(node)));
  }
  CdrWord tail = properList ? CdrWord::nil() : encode(arena, cursor);

  const CellRef start = cells_.size();
  for (std::size_t i = 0; i < heads.size(); ++i) {
    Cell cell;
    cell.car = heads[i];
    const bool last = i + 1 == heads.size();
    if (!last) {
      cell.code = CdrCode::kNext;
    } else if (properList) {
      cell.code = CdrCode::kNil;
    } else {
      // Dotted tail: cdr-normal pair.
      cell.code = CdrCode::kNormal;
    }
    cells_.push_back(cell);
  }
  if (!properList) {
    Cell errorCell;
    errorCell.car = tail;
    errorCell.code = CdrCode::kError;
    cells_.push_back(errorCell);
  }
  return CdrWord::pointer(start);
}

CdrWord CdrCodedHeap::car(CellRef cell) const {
  ++reads_;
  return at(resolve(cell)).car;
}

CdrWord CdrCodedHeap::cdr(CellRef cell) const {
  ++reads_;
  const CellRef c = resolve(cell);
  const Cell& slot = at(c);
  switch (slot.code) {
    case CdrCode::kNext:
      // Address generated without reading another cell — this is the
      // vector-coding win.
      return CdrWord::pointer(c + 1);
    case CdrCode::kNil:
      return CdrWord::nil();
    case CdrCode::kNormal:
      ++reads_;
      ++dependentReads_;
      return at(c + 1).car;
    case CdrCode::kError:
      throw SimulationError("CdrCodedHeap: cdr of a cdr-error cell");
  }
  throw Error("CdrCodedHeap: unreachable cdr code");
}

void CdrCodedHeap::rplaca(CellRef cell, CdrWord value) {
  at(resolve(cell)).car = value;
}

void CdrCodedHeap::rplacd(CellRef cell, CdrWord value) {
  const CellRef c = resolve(cell);
  Cell& slot = at(c);
  switch (slot.code) {
    case CdrCode::kNormal:
      at(c + 1).car = value;
      return;
    case CdrCode::kError:
      throw SimulationError("CdrCodedHeap: rplacd of a cdr-error cell");
    case CdrCode::kNext:
    case CdrCode::kNil: {
      // Copy out into a cdr-normal pair; forward the old cell. The two
      // push_backs may reallocate the cell vector, so re-resolve the old
      // cell afterwards rather than holding `slot` across them.
      const CellRef fresh = cells_.size();
      Cell first;
      first.car = slot.car;
      first.code = CdrCode::kNormal;
      Cell second;
      second.car = value;
      second.code = CdrCode::kError;
      cells_.push_back(first);
      cells_.push_back(second);
      at(c).car = CdrWord::invisible(fresh);
      // Keep the old cdr code: readers are forwarded before looking at it.
      ++invisibles_;
      return;
    }
  }
}

sexpr::NodeRef CdrCodedHeap::decode(sexpr::Arena& arena, CdrWord root) const {
  switch (root.tag) {
    case CdrWord::Tag::kNil:
      return sexpr::kNilRef;
    case CdrWord::Tag::kSymbol:
      return arena.symbol(static_cast<sexpr::SymbolId>(root.payload));
    case CdrWord::Tag::kInteger:
      return arena.integer(static_cast<std::int64_t>(root.payload));
    case CdrWord::Tag::kInvisible:
      return decode(arena, CdrWord::pointer(resolve(root.payload)));
    case CdrWord::Tag::kPointer: {
      // Collect the run, then rebuild back-to-front.
      std::vector<sexpr::NodeRef> heads;
      CdrWord cursor = root;
      CdrWord tail = CdrWord::nil();
      while (cursor.isPointer()) {
        const CellRef c = resolve(cursor.payload);
        heads.push_back(decode(arena, car(c)));
        const CdrWord next = cdr(c);
        if (next.isPointer()) {
          cursor = next;
        } else {
          tail = next;
          break;
        }
      }
      sexpr::NodeRef result = decode(arena, tail);
      for (std::size_t i = heads.size(); i-- > 0;) {
        result = arena.cons(heads[i], result);
      }
      return result;
    }
  }
  throw Error("CdrCodedHeap: unreachable word tag");
}

}  // namespace small::heap
