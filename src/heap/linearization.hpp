// Clark's linearization experiments (§3.2.1-3.2.3), the empirical ground
// under this repository's PointerDistanceModel.
//
// Clark found that (a) list-cell pointers typically point a small distance
// away, (b) "a naive cons algorithm performed almost as well as a more
// clever one in keeping pointer distances small, indicating that this is
// an inherent feature of Lisp list behaviour", and (c) "once a list was
// linearized it tended to stay fairly well linearized".
//
// `LinearizingHeap` is a purpose-built cell store for reproducing those
// findings: cons with a selectable allocation policy, cdr-direction
// linearization (relocation), destructive mutation, and pointer-distance
// metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/stats.hpp"

namespace small::heap {

/// How cons picks the new cell's address.
enum class ConsPolicy : std::uint8_t {
  kNaive,   ///< first free cell (LIFO free list, else bump)
  kClever,  ///< try the cell just before the cdr operand, so the new
            ///< cell's cdr pointer has distance +1; fall back to naive
};

class LinearizingHeap {
 public:
  using CellRef = std::uint32_t;
  static constexpr CellRef kNil = 0xffffffffu;

  struct Word {
    bool isPointer = false;
    std::uint64_t payload = 0;  ///< cell index or atom tag

    static Word atom(std::uint64_t tag) { return {false, tag}; }
    static Word pointer(CellRef cell) { return {true, cell}; }
  };

  explicit LinearizingHeap(ConsPolicy policy) : policy_(policy) {}

  /// cons: allocate a cell per the policy and fill it.
  CellRef cons(Word car, Word cdr);

  Word car(CellRef cell) const;
  Word cdr(CellRef cell) const;
  void setCar(CellRef cell, Word value);
  void setCdr(CellRef cell, Word value);
  void free(CellRef cell);

  /// Build an n-element list of atoms the way programs usually do: by
  /// consing onto the accumulator back to front. Returns the head.
  CellRef buildList(int n, std::uint64_t atomTagBase = 0);

  /// Relocate the list at `head` so consecutive cells are adjacent in the
  /// cdr direction (Clark's linearization); returns the new head. Old
  /// cells are freed.
  CellRef linearize(CellRef head);

  /// Fraction of cdr pointers in the whole heap with distance exactly +1,
  /// and summary statistics of |distance| (§3.2's headline metrics).
  struct DistanceReport {
    std::uint64_t cdrPointers = 0;
    std::uint64_t adjacent = 0;     ///< |distance| == 1 (neighbouring cell)
    std::uint64_t distanceOne = 0;  ///< distance == +1 (cdr-linearized)
    support::RunningStats magnitude;

    double adjacentFraction() const {
      return cdrPointers == 0 ? 0.0
                              : static_cast<double>(adjacent) /
                                    static_cast<double>(cdrPointers);
    }
    double distanceOneFraction() const {
      return cdrPointers == 0 ? 0.0
                              : static_cast<double>(distanceOne) /
                                    static_cast<double>(cdrPointers);
    }
  };
  DistanceReport measureDistances() const;

  /// Distance report restricted to the cells reachable from `head`.
  DistanceReport measureList(CellRef head) const;

  std::uint64_t cellsLive() const { return live_; }

 private:
  struct Cell {
    Word car;
    Word cdr;
    bool free = true;
  };

  CellRef allocate(std::optional<CellRef> preferred);

  ConsPolicy policy_;
  std::vector<Cell> cells_;
  std::vector<CellRef> freeList_;  // may contain stale entries; checked
  std::uint64_t live_ = 0;
};

}  // namespace small::heap
