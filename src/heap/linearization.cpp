#include "heap/linearization.hpp"

#include <cmath>

#include "support/error.hpp"

namespace small::heap {

using support::Error;

LinearizingHeap::CellRef LinearizingHeap::allocate(
    std::optional<CellRef> preferred) {
  if (preferred && *preferred < cells_.size() && cells_[*preferred].free) {
    cells_[*preferred].free = false;
    ++live_;
    return *preferred;
  }
  while (!freeList_.empty()) {
    const CellRef cell = freeList_.back();
    freeList_.pop_back();
    if (cells_[cell].free) {  // skip entries taken via `preferred`
      cells_[cell].free = false;
      ++live_;
      return cell;
    }
  }
  cells_.push_back(Cell{});
  cells_.back().free = false;
  ++live_;
  return static_cast<CellRef>(cells_.size() - 1);
}

LinearizingHeap::CellRef LinearizingHeap::cons(Word car, Word cdr) {
  std::optional<CellRef> preferred;
  if (policy_ == ConsPolicy::kClever && cdr.isPointer && cdr.payload > 0) {
    // Aim for the cell just before the tail, so this cell's cdr pointer
    // has distance +1 (linearized in the cdr direction).
    preferred = static_cast<CellRef>(cdr.payload - 1);
  }
  const CellRef cell = allocate(preferred);
  cells_[cell].car = car;
  cells_[cell].cdr = cdr;
  return cell;
}

LinearizingHeap::Word LinearizingHeap::car(CellRef cell) const {
  if (cell >= cells_.size() || cells_[cell].free) {
    throw Error("LinearizingHeap: car of bad cell");
  }
  return cells_[cell].car;
}

LinearizingHeap::Word LinearizingHeap::cdr(CellRef cell) const {
  if (cell >= cells_.size() || cells_[cell].free) {
    throw Error("LinearizingHeap: cdr of bad cell");
  }
  return cells_[cell].cdr;
}

void LinearizingHeap::setCar(CellRef cell, Word value) {
  if (cell >= cells_.size() || cells_[cell].free) {
    throw Error("LinearizingHeap: setCar of bad cell");
  }
  cells_[cell].car = value;
}

void LinearizingHeap::setCdr(CellRef cell, Word value) {
  if (cell >= cells_.size() || cells_[cell].free) {
    throw Error("LinearizingHeap: setCdr of bad cell");
  }
  cells_[cell].cdr = value;
}

void LinearizingHeap::free(CellRef cell) {
  if (cell >= cells_.size() || cells_[cell].free) {
    throw Error("LinearizingHeap: double free");
  }
  cells_[cell].free = true;
  --live_;
  freeList_.push_back(cell);
}

LinearizingHeap::CellRef LinearizingHeap::buildList(
    int n, std::uint64_t atomTagBase) {
  Word tail = Word::atom(~0ull);  // nil sentinel
  CellRef head = kNil;
  for (int i = n; i-- > 0;) {
    head = cons(Word::atom(atomTagBase + static_cast<std::uint64_t>(i)),
                tail);
    tail = Word::pointer(head);
  }
  return head;
}

LinearizingHeap::CellRef LinearizingHeap::linearize(CellRef head) {
  // Collect the spine, allocate a fresh contiguous run at the end of the
  // store, copy, then free the old cells.
  std::vector<CellRef> spine;
  CellRef cursor = head;
  while (true) {
    spine.push_back(cursor);
    const Word next = cdr(cursor);
    if (!next.isPointer) break;
    cursor = static_cast<CellRef>(next.payload);
  }
  const auto base = static_cast<CellRef>(cells_.size());
  cells_.resize(cells_.size() + spine.size());
  live_ += spine.size();
  for (std::size_t i = 0; i < spine.size(); ++i) {
    Cell& fresh = cells_[base + i];
    fresh.free = false;
    fresh.car = cells_[spine[i]].car;
    fresh.cdr = i + 1 < spine.size()
                    ? Word::pointer(base + static_cast<CellRef>(i) + 1)
                    : cells_[spine[i]].cdr;
  }
  for (const CellRef old : spine) free(old);
  return base;
}

namespace {

void accumulate(LinearizingHeap::DistanceReport& report,
                const LinearizingHeap::Word& cdr,
                LinearizingHeap::CellRef cell) {
  if (!cdr.isPointer) return;
  ++report.cdrPointers;
  const auto distance = static_cast<std::int64_t>(cdr.payload) -
                        static_cast<std::int64_t>(cell);
  if (distance == 1) ++report.distanceOne;
  if (distance == 1 || distance == -1) ++report.adjacent;
  report.magnitude.add(std::llabs(distance));
}

}  // namespace

LinearizingHeap::DistanceReport LinearizingHeap::measureDistances() const {
  DistanceReport report;
  for (CellRef cell = 0; cell < cells_.size(); ++cell) {
    if (cells_[cell].free) continue;
    accumulate(report, cells_[cell].cdr, cell);
  }
  return report;
}

LinearizingHeap::DistanceReport LinearizingHeap::measureList(
    CellRef head) const {
  DistanceReport report;
  CellRef cursor = head;
  while (true) {
    const Word next = cdr(cursor);
    accumulate(report, next, cursor);
    if (!next.isPointer) break;
    cursor = static_cast<CellRef>(next.payload);
  }
  return report;
}

}  // namespace small::heap
