// Heap address assignment for the trace-driven studies (§5.2.5).
//
// "We maintained a counter that represented the next address to be used...
//  Whenever a new list reference was encountered in the simulation, a size
//  was assigned to it based on our n and p distributions... The value of
//  the counter was assigned as the address of that list reference... When
//  an object was accessed (split), addresses were assigned to its car and
//  cdr based on the car or cdr pointer distances listed in Clark's thesis,
//  and calculated as an offset from the address of the object itself."
#pragma once

#include <cstdint>

#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace small::heap {

/// Address and size bookkeeping for simulated heap objects. Addresses are
/// in units of two-pointer list cells (the cachable unit of §5.2.5).
class AddressModel {
 public:
  struct Params {
    support::PointerDistanceModel::Params pointerDistances{};
  };

  AddressModel() : AddressModel(Params{}) {}
  explicit AddressModel(Params params)
      : distances_(params.pointerDistances) {}

  /// Allocate a fresh object of `sizeCells` cells at the bump counter.
  std::uint64_t allocateObject(std::uint32_t sizeCells) {
    const std::uint64_t address = next_;
    next_ += sizeCells == 0 ? 1 : sizeCells;
    return address;
  }

  /// Address of a child produced by splitting the object at `parent`,
  /// using Clark's pointer-distance shape. Clamped to [0, next).
  std::uint64_t childAddress(std::uint64_t parent, support::Rng& rng) {
    const std::int64_t distance = distances_.sampleDistance(rng);
    const auto signedParent = static_cast<std::int64_t>(parent);
    std::int64_t child = signedParent + distance;
    if (child < 0) child = signedParent - distance;
    if (child < 0) child = 0;
    if (next_ > 0 && static_cast<std::uint64_t>(child) >= next_) {
      child = static_cast<std::int64_t>(next_ - 1);
    }
    return static_cast<std::uint64_t>(child);
  }

  std::uint64_t highWaterMark() const { return next_; }

 private:
  support::PointerDistanceModel distances_;
  std::uint64_t next_ = 0;
};

}  // namespace small::heap
