// MIT Lisp Machine style cdr-coded list representation (Fig 2.8).
//
// Each cell holds one full-width car word plus a 2-bit cdr code:
//   cdr-next   — the cdr is the next cell,
//   cdr-nil    — the cdr is nil (last cell of a vectorized run),
//   cdr-normal — the cdr pointer lives in the *next* cell's car word,
//   cdr-error  — this cell is the second half of a cdr-normal pair.
// Destructive rplacd on a vectorized cell forces the cell to be copied out
// into a cdr-normal/cdr-error pair, reached through an *invisible pointer*
// that the access hardware dereferences transparently (§2.3.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::heap {

enum class CdrCode : std::uint8_t { kNormal, kError, kNext, kNil };

struct CdrWord {
  enum class Tag : std::uint8_t {
    kNil,
    kPointer,
    kSymbol,
    kInteger,
    kInvisible,  ///< forwarded cell; hardware auto-dereferences
  };
  Tag tag = Tag::kNil;
  std::uint64_t payload = 0;

  static CdrWord nil() { return {}; }
  static CdrWord pointer(std::uint64_t cell) { return {Tag::kPointer, cell}; }
  static CdrWord symbol(std::uint64_t id) { return {Tag::kSymbol, id}; }
  static CdrWord integer(std::int64_t v) {
    return {Tag::kInteger, static_cast<std::uint64_t>(v)};
  }
  static CdrWord invisible(std::uint64_t cell) {
    return {Tag::kInvisible, cell};
  }

  bool isPointer() const { return tag == Tag::kPointer; }
};

class CdrCodedHeap {
 public:
  using CellRef = std::uint64_t;

  /// Encode an s-expression; lists become vectorized runs of consecutive
  /// cells. Returns the root word.
  CdrWord encode(const sexpr::Arena& arena, sexpr::NodeRef root);

  /// Rebuild an s-expression from the heap.
  sexpr::NodeRef decode(sexpr::Arena& arena, CdrWord root) const;

  /// car of the cell at `cell` (invisible pointers resolved).
  CdrWord car(CellRef cell) const;

  /// cdr of the cell at `cell`: nil, a pointer word, or an atom word.
  CdrWord cdr(CellRef cell) const;

  void rplaca(CellRef cell, CdrWord value);

  /// Destructive cdr replacement; may copy the cell out into a
  /// cdr-normal pair and leave an invisible pointer behind.
  void rplacd(CellRef cell, CdrWord value);

  // --- space/time accounting for the representation comparison bench ---
  std::uint64_t cellsAllocated() const { return cells_.size(); }
  std::uint64_t invisibleCount() const { return invisibles_; }
  /// Memory reads performed; `dependent` reads needed a previous read's
  /// value to form their address (the §2.3.3 addressing bottleneck).
  std::uint64_t reads() const { return reads_; }
  std::uint64_t dependentReads() const { return dependentReads_; }

 private:
  struct Cell {
    CdrWord car;
    CdrCode code = CdrCode::kNil;
  };

  CellRef resolve(CellRef cell) const;  ///< chase invisible pointers
  const Cell& at(CellRef cell) const;
  Cell& at(CellRef cell);

  std::vector<Cell> cells_;
  std::uint64_t invisibles_ = 0;
  mutable std::uint64_t reads_ = 0;
  mutable std::uint64_t dependentReads_ = 0;
};

}  // namespace small::heap
