// The classical two-pointer list-cell heap (Fig 2.6) with a free list,
// object encode/decode, and the split/merge operations the SMALL heap
// controller performs (§4.3.3.2).
//
// "Splitting objects represented using two pointer list cells is simple. To
//  split the object at address X the heap controller simply returns the
//  values of the 2 pointers and frees the list cell at address X."
// "A simple merging algorithm would allocate a new heap cell ... set its
//  car and cdr fields to X and Y respectively and return Z."
#pragma once

#include <cstdint>
#include <vector>

#include "heap/word.hpp"
#include "sexpr/arena.hpp"

namespace small::heap {

class TwoPointerHeap {
 public:
  /// Cell index; kNull means "no cell".
  using CellRef = std::uint64_t;
  static constexpr CellRef kNull = ~0ull;

  /// Allocate one cell (from the free list if possible).
  CellRef allocate(HeapWord car, HeapWord cdr);

  /// Return a cell to the free list.
  void free(CellRef cell);

  /// Recursively free the whole structure rooted at `cell` (the §4.3.3.1
  /// queue-serviced object-free operation). Returns cells reclaimed.
  std::uint64_t freeObject(CellRef cell);

  const HeapWord& car(CellRef cell) const;
  const HeapWord& cdr(CellRef cell) const;
  void setCar(CellRef cell, HeapWord value);
  void setCdr(CellRef cell, HeapWord value);

  /// §4.3.3.2 split: returns the two halves and frees the parent cell.
  struct SplitResult {
    HeapWord car;
    HeapWord cdr;
  };
  SplitResult split(CellRef cell);

  /// §4.3.3.2 merge: inverse of split.
  CellRef merge(HeapWord car, HeapWord cdr) { return allocate(car, cdr); }

  /// Copy an s-expression into the heap; returns the root word.
  HeapWord encode(const sexpr::Arena& arena, sexpr::NodeRef root);

  /// Rebuild an s-expression in `arena` from heap structure.
  sexpr::NodeRef decode(sexpr::Arena& arena, HeapWord root) const;

  std::uint64_t cellsAllocated() const { return cells_.size(); }
  std::uint64_t cellsLive() const { return cells_.size() - freeList_.size(); }
  std::uint64_t freeListLength() const { return freeList_.size(); }

  /// Is the cell on the free list? (Sweep support: car/cdr of a freed cell
  /// throw, so a collector enumerating the cell store needs this test.)
  bool isFree(CellRef cell) const;

  /// Observe every allocation (including encode's internal ones) by
  /// appending the fresh CellRef to `sink`; nullptr detaches. Lets a
  /// wrapping backend young-record or allocate-black cells that encode
  /// reuses from the free list mid-collection-cycle.
  void setAllocSink(std::vector<CellRef>* sink) { allocSink_ = sink; }

 private:
  struct Cell {
    HeapWord car;
    HeapWord cdr;
    bool free = false;
  };

  Cell& at(CellRef cell);
  const Cell& at(CellRef cell) const;

  std::vector<Cell> cells_;
  std::vector<CellRef> freeList_;  // LIFO: most recently freed reused first
  std::vector<CellRef>* allocSink_ = nullptr;
};

}  // namespace small::heap
