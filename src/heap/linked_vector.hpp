// Linked-vector list representation (Fig 2.7, [Li85a]).
//
// Lists are stored in fixed-size vectors whose elements carry a 2-bit tag:
//   default/next — element value, cdr is the next element,
//   cdr-nil      — element value, cdr is nil,
//   indirect     — the element holds a pointer to an element in another
//                  vector (the exception condition),
//   unused       — free slot (avoids frequent compaction).
// The fixed vector size trades internal fragmentation (too large) against
// indirection-cell overhead (too small) — the tension §2.3.3.1 describes
// and the representation bench measures.
#pragma once

#include <cstdint>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::heap {

class LinkedVectorHeap {
 public:
  enum class ElementTag : std::uint8_t { kNext, kCdrNil, kIndirect, kUnused };

  struct Value {
    enum class Tag : std::uint8_t { kNil, kSymbol, kInteger, kListPointer };
    Tag tag = Tag::kNil;
    std::uint64_t payload = 0;
  };

  /// Global element index = vector * vectorSize + slot.
  using ElementRef = std::uint64_t;

  explicit LinkedVectorHeap(std::uint32_t vectorSize);

  /// Encode a proper list (dotted tails are not representable in the basic
  /// scheme and throw). Returns the first element's ref, or nil for ().
  struct Root {
    bool isNil = true;
    ElementRef first = 0;
  };
  Root encode(const sexpr::Arena& arena, sexpr::NodeRef root);

  sexpr::NodeRef decode(sexpr::Arena& arena, Root root) const;

  // --- accounting ---
  std::uint64_t vectorsAllocated() const { return vectors_; }
  std::uint64_t elementsUsed() const { return used_; }
  std::uint64_t indirections() const { return indirections_; }
  std::uint64_t unusedSlots() const {
    return vectors_ * vectorSize_ - used_;
  }
  std::uint32_t vectorSize() const { return vectorSize_; }

 private:
  struct Element {
    ElementTag tag = ElementTag::kUnused;
    Value value;
    ElementRef indirect = 0;
  };

  ElementRef allocateRun(std::size_t hint);
  const Element& at(ElementRef ref) const;

  std::uint32_t vectorSize_;
  std::vector<Element> elements_;
  std::uint64_t vectors_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t indirections_ = 0;
  std::uint32_t slotInCurrentVector_ = 0;
  bool haveVector_ = false;
};

}  // namespace small::heap
