#include "heap/cdar_coded.hpp"

#include <string>

#include "support/error.hpp"

namespace small::heap {

using support::Error;
using support::EvalError;

CdarCode CdarCode::prepend(bool cdrStep) const {
  if (length >= 64) throw Error("CdarCode: path too long");
  CdarCode out;
  out.length = static_cast<std::uint8_t>(length + 1);
  // Steps are stored root-first from the MSB end of the window, so a new
  // root step lands above the current most significant bit.
  out.bits = bits | (static_cast<std::uint64_t>(cdrStep ? 1u : 0u) << length);
  return out;
}

bool CdarCode::firstStep() const {
  if (length == 0) throw Error("CdarCode: empty path has no first step");
  return ((bits >> (length - 1)) & 1u) != 0;
}

CdarCode CdarCode::stripFirst() const {
  if (length == 0) throw Error("CdarCode: cannot strip empty path");
  CdarCode out;
  out.length = static_cast<std::uint8_t>(length - 1);
  out.bits = bits & ((out.length == 64) ? ~0ull
                                        : ((1ull << out.length) - 1ull));
  return out;
}

std::string CdarCode::toString() const {
  std::string out;
  for (int i = length - 1; i >= 0; --i) {
    out.push_back(((bits >> i) & 1u) ? '1' : '0');
  }
  return out;
}

namespace {

void encodeInto(const sexpr::Arena& arena, sexpr::NodeRef node,
                CdarCode path, std::vector<CdarTable::Entry>& entries) {
  switch (arena.kind(node)) {
    case sexpr::NodeKind::kNil: {
      CdarTable::Entry entry;
      entry.code = path;
      entry.tag = CdarTable::Entry::Tag::kNil;
      entries.push_back(entry);
      return;
    }
    case sexpr::NodeKind::kSymbol: {
      CdarTable::Entry entry;
      entry.code = path;
      entry.tag = CdarTable::Entry::Tag::kSymbol;
      entry.payload = arena.symbolId(node);
      entries.push_back(entry);
      return;
    }
    case sexpr::NodeKind::kInteger: {
      CdarTable::Entry entry;
      entry.code = path;
      entry.tag = CdarTable::Entry::Tag::kInteger;
      entry.payload = static_cast<std::uint64_t>(arena.integerValue(node));
      entries.push_back(entry);
      return;
    }
    case sexpr::NodeKind::kCons: {
      CdarCode carPath = path;
      CdarCode cdrPath = path;
      // Codes are built root-first: extend with 0 for car, 1 for cdr.
      if (path.length >= 64) throw Error("CdarTable: list too deep/long");
      carPath.bits = path.bits << 1;
      carPath.length = static_cast<std::uint8_t>(path.length + 1);
      cdrPath.bits = (path.bits << 1) | 1u;
      cdrPath.length = static_cast<std::uint8_t>(path.length + 1);
      encodeInto(arena, arena.car(node), carPath, entries);
      encodeInto(arena, arena.cdr(node), cdrPath, entries);
      return;
    }
  }
}

}  // namespace

CdarTable CdarTable::encode(const sexpr::Arena& arena, sexpr::NodeRef root) {
  CdarTable table;
  encodeInto(arena, root, CdarCode{}, table.entries_);
  return table;
}

namespace {

sexpr::NodeRef decodeAt(sexpr::Arena& arena,
                        const std::vector<CdarTable::Entry>& entries,
                        const CdarCode& path) {
  // Exact match → atom entry here.
  for (const CdarTable::Entry& entry : entries) {
    if (entry.code == path) {
      switch (entry.tag) {
        case CdarTable::Entry::Tag::kNil:
          return sexpr::kNilRef;
        case CdarTable::Entry::Tag::kSymbol:
          return arena.symbol(static_cast<sexpr::SymbolId>(entry.payload));
        case CdarTable::Entry::Tag::kInteger:
          return arena.integer(static_cast<std::int64_t>(entry.payload));
      }
    }
  }
  // Otherwise this path is an internal node: decode both children.
  CdarCode carPath = path;
  carPath.bits = path.bits << 1;
  carPath.length = static_cast<std::uint8_t>(path.length + 1);
  CdarCode cdrPath = path;
  cdrPath.bits = (path.bits << 1) | 1u;
  cdrPath.length = static_cast<std::uint8_t>(path.length + 1);
  // Check the subtree is nonempty to fail fast on corrupt tables.
  bool anyChild = false;
  for (const CdarTable::Entry& entry : entries) {
    if (entry.code.length > path.length) {
      const std::uint64_t prefix =
          entry.code.bits >> (entry.code.length - path.length);
      if (path.length == 0 || prefix == path.bits) {
        anyChild = true;
        break;
      }
    }
  }
  if (!anyChild) {
    throw EvalError("CdarTable: decode found no entry under path " +
                    path.toString());
  }
  const sexpr::NodeRef head = decodeAt(arena, entries, carPath);
  const sexpr::NodeRef tail = decodeAt(arena, entries, cdrPath);
  return arena.cons(head, tail);
}

}  // namespace

sexpr::NodeRef CdarTable::decode(sexpr::Arena& arena) const {
  if (entries_.empty()) return sexpr::kNilRef;
  return decodeAt(arena, entries_, CdarCode{});
}

CdarTable CdarTable::car(std::uint64_t* copies) const {
  CdarTable out;
  for (const Entry& entry : entries_) {
    if (entry.code.length == 0) continue;  // the root atom has no car
    if (!entry.code.firstStep()) {
      Entry stripped = entry;
      stripped.code = entry.code.stripFirst();
      out.entries_.push_back(stripped);
      if (copies) ++*copies;
    }
  }
  return out;
}

CdarTable CdarTable::cdr(std::uint64_t* copies) const {
  CdarTable out;
  for (const Entry& entry : entries_) {
    if (entry.code.length == 0) continue;
    if (entry.code.firstStep()) {
      Entry stripped = entry;
      stripped.code = entry.code.stripFirst();
      out.entries_.push_back(stripped);
      if (copies) ++*copies;
    }
  }
  return out;
}

const CdarTable::Entry* CdarTable::probe(const CdarCode& code) const {
  for (const Entry& entry : entries_) {
    if (entry.code == code) return &entry;
  }
  return nullptr;
}

}  // namespace small::heap
