// The tagged heap word: the currency every heap backend trades in. A word
// is a pointer to a heap cell, an immediate atom (symbol/integer payload),
// or nil. Backends translate their internal coding (cdr codes, invisible
// pointers, vector element tags) to and from these words at the interface
// boundary, so the SMALL machine above never sees representation detail.
#pragma once

#include <cstdint>

namespace small::heap {

/// A tagged word in a heap cell: a pointer to another cell, an atom
/// (symbol/integer payload), or nil.
struct HeapWord {
  enum class Tag : std::uint8_t { kNil, kPointer, kSymbol, kInteger };
  Tag tag = Tag::kNil;
  std::uint64_t payload = 0;

  static HeapWord nil() { return {}; }
  static HeapWord pointer(std::uint64_t cell) {
    return {Tag::kPointer, cell};
  }
  static HeapWord symbol(std::uint64_t id) { return {Tag::kSymbol, id}; }
  static HeapWord integer(std::int64_t v) {
    return {Tag::kInteger, static_cast<std::uint64_t>(v)};
  }

  bool isPointer() const { return tag == Tag::kPointer; }
};

}  // namespace small::heap
