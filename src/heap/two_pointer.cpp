#include "heap/two_pointer.hpp"

#include <vector>

#include "support/error.hpp"

namespace small::heap {

using support::Error;
using support::SimulationError;

TwoPointerHeap::Cell& TwoPointerHeap::at(CellRef cell) {
  if (cell >= cells_.size()) throw Error("TwoPointerHeap: bad cell ref");
  return cells_[cell];
}

const TwoPointerHeap::Cell& TwoPointerHeap::at(CellRef cell) const {
  if (cell >= cells_.size()) throw Error("TwoPointerHeap: bad cell ref");
  return cells_[cell];
}

TwoPointerHeap::CellRef TwoPointerHeap::allocate(HeapWord car, HeapWord cdr) {
  if (!freeList_.empty()) {
    const CellRef cell = freeList_.back();
    freeList_.pop_back();
    at(cell) = Cell{car, cdr, false};
    if (allocSink_ != nullptr) allocSink_->push_back(cell);
    return cell;
  }
  cells_.push_back(Cell{car, cdr, false});
  if (allocSink_ != nullptr) allocSink_->push_back(cells_.size() - 1);
  return cells_.size() - 1;
}

void TwoPointerHeap::free(CellRef cell) {
  Cell& slot = at(cell);
  if (slot.free) throw SimulationError("TwoPointerHeap: double free");
  slot.free = true;
  slot.car = HeapWord::nil();
  slot.cdr = HeapWord::nil();
  freeList_.push_back(cell);
}

std::uint64_t TwoPointerHeap::freeObject(CellRef root) {
  // Iterative traversal with an explicit stack, as the heap controller
  // would do while servicing its free-request queue.
  std::uint64_t reclaimed = 0;
  std::vector<CellRef> stack{root};
  while (!stack.empty()) {
    const CellRef cell = stack.back();
    stack.pop_back();
    if (cell == kNull || cell >= cells_.size()) continue;
    Cell& slot = cells_[cell];
    if (slot.free) continue;  // shared substructure already reclaimed
    if (slot.car.isPointer()) stack.push_back(slot.car.payload);
    if (slot.cdr.isPointer()) stack.push_back(slot.cdr.payload);
    free(cell);
    ++reclaimed;
  }
  return reclaimed;
}

bool TwoPointerHeap::isFree(CellRef cell) const { return at(cell).free; }

const HeapWord& TwoPointerHeap::car(CellRef cell) const {
  const Cell& slot = at(cell);
  if (slot.free) throw SimulationError("TwoPointerHeap: car of freed cell");
  return slot.car;
}

const HeapWord& TwoPointerHeap::cdr(CellRef cell) const {
  const Cell& slot = at(cell);
  if (slot.free) throw SimulationError("TwoPointerHeap: cdr of freed cell");
  return slot.cdr;
}

void TwoPointerHeap::setCar(CellRef cell, HeapWord value) {
  Cell& slot = at(cell);
  if (slot.free) throw SimulationError("TwoPointerHeap: write to freed cell");
  slot.car = value;
}

void TwoPointerHeap::setCdr(CellRef cell, HeapWord value) {
  Cell& slot = at(cell);
  if (slot.free) throw SimulationError("TwoPointerHeap: write to freed cell");
  slot.cdr = value;
}

TwoPointerHeap::SplitResult TwoPointerHeap::split(CellRef cell) {
  const Cell snapshot = at(cell);
  if (snapshot.free) throw SimulationError("TwoPointerHeap: split freed cell");
  free(cell);
  return {snapshot.car, snapshot.cdr};
}

HeapWord TwoPointerHeap::encode(const sexpr::Arena& arena,
                                sexpr::NodeRef root) {
  switch (arena.kind(root)) {
    case sexpr::NodeKind::kNil:
      return HeapWord::nil();
    case sexpr::NodeKind::kSymbol:
      return HeapWord::symbol(arena.symbolId(root));
    case sexpr::NodeKind::kInteger:
      return HeapWord::integer(arena.integerValue(root));
    case sexpr::NodeKind::kCons: {
      // Encode the spine iteratively, building cells back-to-front so cdr
      // pointers are known when each cell is allocated.
      std::vector<sexpr::NodeRef> spine;
      sexpr::NodeRef cursor = root;
      while (arena.kind(cursor) == sexpr::NodeKind::kCons) {
        spine.push_back(cursor);
        cursor = arena.cdr(cursor);
      }
      HeapWord tail = encode(arena, cursor);
      for (std::size_t i = spine.size(); i-- > 0;) {
        const HeapWord head = encode(arena, arena.car(spine[i]));
        tail = HeapWord::pointer(allocate(head, tail));
      }
      return tail;
    }
  }
  throw Error("TwoPointerHeap: unreachable node kind");
}

sexpr::NodeRef TwoPointerHeap::decode(sexpr::Arena& arena,
                                      HeapWord root) const {
  switch (root.tag) {
    case HeapWord::Tag::kNil:
      return sexpr::kNilRef;
    case HeapWord::Tag::kSymbol:
      return arena.symbol(static_cast<sexpr::SymbolId>(root.payload));
    case HeapWord::Tag::kInteger:
      return arena.integer(static_cast<std::int64_t>(root.payload));
    case HeapWord::Tag::kPointer: {
      const Cell& slot = at(root.payload);
      if (slot.free) {
        throw SimulationError("TwoPointerHeap: decode of freed cell");
      }
      const sexpr::NodeRef head = decode(arena, slot.car);
      const sexpr::NodeRef tail = decode(arena, slot.cdr);
      return arena.cons(head, tail);
    }
  }
  throw Error("TwoPointerHeap: unreachable word tag");
}

}  // namespace small::heap
