#include "heap/linked_vector.hpp"

#include "support/error.hpp"

namespace small::heap {

using support::Error;
using support::EvalError;

LinkedVectorHeap::LinkedVectorHeap(std::uint32_t vectorSize)
    : vectorSize_(vectorSize) {
  if (vectorSize < 2) {
    throw Error("LinkedVectorHeap: vector size must be >= 2");
  }
}

const LinkedVectorHeap::Element& LinkedVectorHeap::at(ElementRef ref) const {
  if (ref >= elements_.size()) throw Error("LinkedVectorHeap: bad ref");
  return elements_[ref];
}

LinkedVectorHeap::Root LinkedVectorHeap::encode(const sexpr::Arena& arena,
                                                sexpr::NodeRef root) {
  if (arena.isNil(root)) return Root{};
  if (arena.isAtom(root)) {
    throw EvalError("LinkedVectorHeap: encode expects a list");
  }

  // Gather the spine values first (sublists encode recursively and come
  // out as list-pointer values).
  std::vector<Value> values;
  sexpr::NodeRef cursor = root;
  while (!arena.isNil(cursor)) {
    if (arena.isAtom(cursor)) {
      throw EvalError("LinkedVectorHeap: dotted lists unsupported");
    }
    const sexpr::NodeRef head = arena.car(cursor);
    Value value;
    switch (arena.kind(head)) {
      case sexpr::NodeKind::kNil:
        value.tag = Value::Tag::kNil;
        break;
      case sexpr::NodeKind::kSymbol:
        value.tag = Value::Tag::kSymbol;
        value.payload = arena.symbolId(head);
        break;
      case sexpr::NodeKind::kInteger:
        value.tag = Value::Tag::kInteger;
        value.payload = static_cast<std::uint64_t>(arena.integerValue(head));
        break;
      case sexpr::NodeKind::kCons: {
        const Root sub = encode(arena, head);
        value.tag = Value::Tag::kListPointer;
        value.payload = sub.first;
        break;
      }
    }
    values.push_back(value);
    cursor = arena.cdr(cursor);
  }

  // Lay the values out, starting a fresh vector (and an indirection
  // element) whenever the current one fills up.
  Root result;
  result.isNil = false;
  ElementRef previousIndirect = 0;
  bool needBackpatch = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Start a new vector if needed; reserve one slot for a possible
    // trailing indirection.
    if (!haveVector_ || slotInCurrentVector_ >= vectorSize_) {
      elements_.resize(elements_.size() + vectorSize_);
      ++vectors_;
      slotInCurrentVector_ = 0;
      haveVector_ = true;
    }
    const ElementRef ref = elements_.size() - vectorSize_ +
                           slotInCurrentVector_;
    if (i == 0) result.first = ref;
    if (needBackpatch) {
      elements_[previousIndirect].indirect = ref;
      needBackpatch = false;
    }
    Element& element = elements_[ref];
    element.value = values[i];
    ++used_;
    ++slotInCurrentVector_;
    const bool last = i + 1 == values.size();
    if (last) {
      element.tag = ElementTag::kCdrNil;
    } else if (slotInCurrentVector_ + 1 >= vectorSize_) {
      // The next slot must be an indirection to the continuation.
      element.tag = ElementTag::kNext;
      const ElementRef indirectRef = ref + 1;
      Element& indirect = elements_[indirectRef];
      indirect.tag = ElementTag::kIndirect;
      ++used_;
      ++indirections_;
      ++slotInCurrentVector_;
      previousIndirect = indirectRef;
      needBackpatch = true;
    } else {
      element.tag = ElementTag::kNext;
    }
  }
  return result;
}

sexpr::NodeRef LinkedVectorHeap::decode(sexpr::Arena& arena,
                                        Root root) const {
  if (root.isNil) return sexpr::kNilRef;
  std::vector<sexpr::NodeRef> heads;
  ElementRef ref = root.first;
  while (true) {
    const Element& element = at(ref);
    if (element.tag == ElementTag::kIndirect) {
      ref = element.indirect;
      continue;
    }
    if (element.tag == ElementTag::kUnused) {
      throw Error("LinkedVectorHeap: decode hit an unused slot");
    }
    sexpr::NodeRef head = sexpr::kNilRef;
    switch (element.value.tag) {
      case Value::Tag::kNil:
        head = sexpr::kNilRef;
        break;
      case Value::Tag::kSymbol:
        head = arena.symbol(
            static_cast<sexpr::SymbolId>(element.value.payload));
        break;
      case Value::Tag::kInteger:
        head = arena.integer(static_cast<std::int64_t>(element.value.payload));
        break;
      case Value::Tag::kListPointer: {
        Root sub;
        sub.isNil = false;
        sub.first = element.value.payload;
        head = decode(arena, sub);
        break;
      }
    }
    heads.push_back(head);
    if (element.tag == ElementTag::kCdrNil) break;
    ++ref;
  }
  sexpr::NodeRef result = sexpr::kNilRef;
  for (std::size_t i = heads.size(); i-- > 0;) {
    result = arena.cons(heads[i], result);
  }
  return result;
}

}  // namespace small::heap
