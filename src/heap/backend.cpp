#include "heap/backend.hpp"

#include <vector>

#include "heap/cdr_coded.hpp"
#include "heap/two_pointer.hpp"
#include "support/error.hpp"

namespace small::heap {

using support::Error;
using support::SimulationError;

// ---------------------------------------------------------------------------
// Generic decode: one spine-iterative walk over the virtual car/cdr, so
// each backend's decode pays exactly its representation's touch profile.
// ---------------------------------------------------------------------------

sexpr::NodeRef HeapBackend::decode(sexpr::Arena& arena, HeapWord root) const {
  switch (root.tag) {
    case HeapWord::Tag::kNil:
      return sexpr::kNilRef;
    case HeapWord::Tag::kSymbol:
      return arena.symbol(static_cast<sexpr::SymbolId>(root.payload));
    case HeapWord::Tag::kInteger:
      return arena.integer(static_cast<std::int64_t>(root.payload));
    case HeapWord::Tag::kPointer: {
      std::vector<sexpr::NodeRef> heads;
      HeapWord cursor = root;
      HeapWord tail = HeapWord::nil();
      while (cursor.isPointer()) {
        heads.push_back(decode(arena, car(cursor.payload)));
        const HeapWord next = cdr(cursor.payload);
        if (next.isPointer()) {
          cursor = next;
        } else {
          tail = next;
          break;
        }
      }
      sexpr::NodeRef result = decode(arena, tail);
      for (std::size_t i = heads.size(); i-- > 0;) {
        result = arena.cons(heads[i], result);
      }
      return result;
    }
  }
  throw Error("HeapBackend: unreachable word tag");
}

// ---------------------------------------------------------------------------
// Resumable collection driver: one tri-color mark/sweep loop over the
// per-representation gcVisit/gcTraceOne/gcSweepAt bodies. The stop-the-
// world collectGarbage is the degenerate single unbounded slice, with
// stats identical to the pre-driver per-backend implementations.
// ---------------------------------------------------------------------------

HeapBackend::CollectResult HeapBackend::collectGarbage(
    const std::vector<HeapWord>& roots) {
  gcBegin(roots, /*youngOnly=*/false);
  CollectResult result;
  gcStep(0, result);
  return result;
}

void HeapBackend::gcBegin(const std::vector<HeapWord>& roots, bool youngOnly) {
  if (gcPhase_ != GcPhase::kIdle) {
    throw Error("HeapBackend::gcBegin: collection cycle already active");
  }
  if (youngOnly && !youngTracking_) {
    throw Error("HeapBackend::gcBegin: young cycle without young tracking");
  }
  gcMarked_.assign(cellsAllocated(), false);
  gcGray_.clear();
  gcYoungOnly_ = youngOnly;
  gcSweepCursor_ = 0;
  gcYoungSweepPos_ = 0;
  // The root scan is atomic (the root file is small): it is what makes
  // the SATB snapshot well-defined for the incremental driver.
  gcPhase_ = GcPhase::kMark;
  for (const HeapWord& root : roots) {
    if (root.isPointer()) gcVisit(root.payload);
  }
  if (youngOnly) {
    for (const CellRef target : remembered_) gcVisit(target);
  }
}

bool HeapBackend::gcStep(std::uint64_t touchBudget, CollectResult& result) {
  if (gcPhase_ == GcPhase::kIdle) return true;
  const std::uint64_t touchesBefore = stats_.touches();
  const auto overBudget = [&] {
    return touchBudget != 0 && stats_.touches() - touchesBefore >= touchBudget;
  };

  if (gcPhase_ == GcPhase::kMark) {
    while (!gcGray_.empty() && !overBudget()) {
      const CellRef cell = gcGray_.back();
      gcGray_.pop_back();
      gcTraceOne(cell, result);
    }
    if (!gcGray_.empty()) return false;  // slice exhausted mid-mark
    gcPhase_ = GcPhase::kSweep;
  }

  if (gcYoungOnly_) {
    // Young sweep: only the cells recorded since the last promotion, in
    // allocation order (pair heads precede their partner slots, so an
    // unmarked pair is freed head-first and the partner skips as freed).
    while (gcYoungSweepPos_ < youngList_.size() && !overBudget()) {
      gcSweepAt(youngList_[gcYoungSweepPos_++], result);
    }
    if (gcYoungSweepPos_ < youngList_.size()) return false;
  } else {
    // Full sweep: ascend the cell store up to the cycle's snapshot
    // extent; cells allocated mid-cycle beyond it are implicitly black.
    while (gcSweepCursor_ < gcMarked_.size() && !overBudget()) {
      gcSweepAt(gcSweepCursor_++, result);
    }
    if (gcSweepCursor_ < gcMarked_.size()) return false;
  }

  // Cycle complete: survivors of any cycle are promoted out of the
  // nursery (a full cycle restores the exact live set; a young cycle
  // promoted exactly its survivors).
  if (youngTracking_) gcPromote();
  gcMarked_.clear();
  gcGray_.clear();
  gcPhase_ = GcPhase::kIdle;
  return true;
}

HeapBackend::CollectResult HeapBackend::collectYoung(
    const std::vector<HeapWord>& roots) {
  gcBegin(roots, /*youngOnly=*/true);
  CollectResult result;
  gcStep(0, result);
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// Two-pointer backend: a thin counting adapter over heap::TwoPointerHeap.
// ---------------------------------------------------------------------------

class TwoPointerBackend final : public HeapBackend {
 public:
  const char* name() const override { return "two-pointer"; }

  CellRef allocate(HeapWord car, HeapWord cdr) override {
    const CellRef cell = heap_.allocate(car, cdr);
    ++stats_.allocs;
    stats_.writes += 2;
    noteAlloc(1);
    gcNoteAlloc(cell, 1);
    return cell;
  }

  void free(CellRef cell) override {
    heap_.free(cell);
    ++stats_.writes;
    noteFree(1);
  }

  std::uint64_t freeObject(CellRef cell) override {
    const std::uint64_t reclaimed = heap_.freeObject(cell);
    // The controller examines both words of every reclaimed cell to find
    // substructure, then rewrites it onto the free list.
    stats_.reads += 2 * reclaimed;
    stats_.writes += reclaimed;
    noteFree(reclaimed);
    return reclaimed;
  }

  HeapWord car(CellRef cell) const override {
    ++stats_.reads;
    return heap_.car(cell);
  }
  HeapWord cdr(CellRef cell) const override {
    ++stats_.reads;
    return heap_.cdr(cell);
  }
  void setCar(CellRef cell, HeapWord value) override {
    if (gcMarking()) gcShadeWord(heap_.car(cell));
    if (value.isPointer() && !isYoung(cell)) gcRemember(value.payload);
    ++stats_.writes;
    heap_.setCar(cell, value);
  }
  void setCdr(CellRef cell, HeapWord value) override {
    if (gcMarking()) gcShadeWord(heap_.cdr(cell));
    if (value.isPointer() && !isYoung(cell)) gcRemember(value.payload);
    ++stats_.writes;
    heap_.setCdr(cell, value);
  }

  SplitResult split(CellRef cell) override {
    const TwoPointerHeap::SplitResult halves = heap_.split(cell);
    ++stats_.splits;
    ++stats_.reads;   // one cell fetch yields both words
    ++stats_.writes;  // free-list insertion
    noteFree(1);
    // The destroyed cell's words escape to the owner's table: keep their
    // targets in an in-flight cycle's snapshot.
    gcShadeWord(halves.car);
    gcShadeWord(halves.cdr);
    return {halves.car, halves.cdr};
  }

  CellRef merge(HeapWord car, HeapWord cdr) override {
    ++stats_.merges;
    return allocate(car, cdr);
  }

  HeapWord encode(const sexpr::Arena& arena, sexpr::NodeRef root) override {
    const std::uint64_t before = heap_.cellsLive();
    // encode allocates internally (and may reuse freed refs): observe
    // every fresh cell so it can be young-recorded / allocated black.
    encodeScratch_.clear();
    heap_.setAllocSink(&encodeScratch_);
    const HeapWord word = heap_.encode(arena, root);
    heap_.setAllocSink(nullptr);
    for (const CellRef cell : encodeScratch_) gcNoteAlloc(cell, 1);
    const std::uint64_t delta = heap_.cellsLive() - before;
    stats_.allocs += delta;
    stats_.writes += 2 * delta;
    noteAlloc(delta);
    return word;
  }

  std::uint64_t cellsAllocated() const override {
    return heap_.cellsAllocated();
  }

  /// The wrapped representation, for the abstraction-overhead bench.
  TwoPointerHeap& raw() { return heap_; }

 protected:
  void gcVisit(CellRef cell) override {
    if (cell >= gcMarked_.size()) return;  // post-snapshot: implicitly black
    if (heap_.isFree(cell)) return;        // stale gray/shade target
    if (gcYoungOnly() && !isYoung(cell)) return;
    if (!gcMarked_[cell]) {
      gcMarked_[cell] = true;
      gcGray_.push_back(cell);
    }
  }

  void gcTraceOne(CellRef cell, CollectResult& result) override {
    if (heap_.isFree(cell)) return;  // freed after it went gray
    ++result.traced;
    // One cell fetch yields both words of each traced cell.
    stats_.reads += 2;
    if (heap_.car(cell).isPointer()) gcVisit(heap_.car(cell).payload);
    if (heap_.cdr(cell).isPointer()) gcVisit(heap_.cdr(cell).payload);
  }

  void gcSweepAt(CellRef cell, CollectResult& result) override {
    // A read per occupied cell examined, a free-list write per reclaim.
    if (heap_.isFree(cell)) return;
    ++stats_.reads;
    if (gcMarked_[cell]) return;
    heap_.free(cell);
    ++stats_.writes;
    noteFree(1);
    ++result.reclaimed;
  }

 private:
  TwoPointerHeap heap_;
  std::vector<CellRef> encodeScratch_;
};

// ---------------------------------------------------------------------------
// Cdr-coded backend (Fig 2.8): full-width car word plus a 2-bit cdr code.
// Encoded lists are vectorized runs; explicit-cdr conses are cdr-normal/
// cdr-error pairs of adjacent cells; destructive cdr replacement on a
// vectorized cell copies it out behind an invisible pointer. This backend
// extends the read-only heap::CdrCodedHeap discipline with the free-pool,
// split and merge operations the SMALL heap controller needs; it reuses
// the CdrWord/CdrCode vocabulary from cdr_coded.hpp.
// ---------------------------------------------------------------------------

class CdrCodedBackend final : public HeapBackend {
 public:
  const char* name() const override { return "cdr-coded"; }

  CellRef allocate(HeapWord car, HeapWord cdr) override {
    ++stats_.allocs;
    if (cdr.tag == HeapWord::Tag::kNil) {
      const CellRef cell = allocSingle();
      cells_[cell] = Cell{toCdr(car), CdrCode::kNil, false};
      ++stats_.writes;
      gcNoteAlloc(cell, 1);
      return cell;
    }
    const CellRef cell = allocPair();
    cells_[cell] = Cell{toCdr(car), CdrCode::kNormal, false};
    cells_[cell + 1] = Cell{toCdr(cdr), CdrCode::kError, false};
    stats_.writes += 2;
    gcNoteAlloc(cell, 2);
    return cell;
  }

  void free(CellRef cell) override { freeCons(resolveFreeing(cell)); }

  std::uint64_t freeObject(CellRef root) override {
    std::uint64_t reclaimed = 0;
    std::vector<CellRef> stack{root};
    while (!stack.empty()) {
      CellRef cell = stack.back();
      stack.pop_back();
      if (cell >= cells_.size() || cells_[cell].free) continue;
      // Forwarding cells die with the object they forward to.
      while (cells_[cell].car.tag == CdrWord::Tag::kInvisible) {
        const CellRef next = cells_[cell].car.payload;
        ++stats_.reads;
        freeSingle(cell);
        ++reclaimed;
        cell = next;
        if (cell >= cells_.size() || cells_[cell].free) break;
      }
      if (cell >= cells_.size() || cells_[cell].free) continue;
      const Cell& slot = cells_[cell];
      ++stats_.reads;
      if (slot.car.isPointer()) stack.push_back(slot.car.payload);
      switch (slot.code) {
        case CdrCode::kNext:
          stack.push_back(cell + 1);
          freeSingle(cell);
          ++reclaimed;
          break;
        case CdrCode::kNil:
          freeSingle(cell);
          ++reclaimed;
          break;
        case CdrCode::kNormal: {
          ++stats_.reads;
          const CdrWord tail = cells_[cell + 1].car;
          if (tail.isPointer()) stack.push_back(tail.payload);
          freePair(cell);
          reclaimed += 2;
          break;
        }
        case CdrCode::kError:
          throw SimulationError(
              "CdrCodedBackend: freeObject entered a cdr-error cell");
      }
    }
    return reclaimed;
  }

  HeapWord car(CellRef cell) const override {
    const CellRef c = resolve(cell);
    ++stats_.reads;
    return toWord(at(c).car);
  }

  HeapWord cdr(CellRef cell) const override {
    const CellRef c = resolve(cell);
    ++stats_.reads;
    switch (at(c).code) {
      case CdrCode::kNext:
        // Address arithmetic, not a memory read — the cdr-coding win.
        return HeapWord::pointer(c + 1);
      case CdrCode::kNil:
        return HeapWord::nil();
      case CdrCode::kNormal:
        ++stats_.reads;
        return toWord(at(c + 1).car);
      case CdrCode::kError:
        throw SimulationError("CdrCodedBackend: cdr of a cdr-error cell");
    }
    throw Error("CdrCodedBackend: unreachable cdr code");
  }

  void setCar(CellRef cell, HeapWord value) override {
    const CellRef c = resolve(cell);
    if (gcMarking() && at(c).car.isPointer()) {
      gcShadeWord(HeapWord::pointer(at(c).car.payload));
    }
    if (value.isPointer() && !isYoung(c)) gcRemember(value.payload);
    ++stats_.writes;
    at(c).car = toCdr(value);
  }

  void setCdr(CellRef cell, HeapWord value) override {
    const CellRef c = resolve(cell);
    Cell& slot = at(c);
    switch (slot.code) {
      case CdrCode::kNormal:
        if (gcMarking() && at(c + 1).car.isPointer()) {
          gcShadeWord(HeapWord::pointer(at(c + 1).car.payload));
        }
        if (value.isPointer() && !isYoung(c)) gcRemember(value.payload);
        ++stats_.writes;
        at(c + 1).car = toCdr(value);
        return;
      case CdrCode::kError:
        throw SimulationError("CdrCodedBackend: rplacd of a cdr-error cell");
      case CdrCode::kNext:
      case CdrCode::kNil: {
        // Copy out into a cdr-normal pair; forward the old cell through an
        // invisible pointer (§2.3.3.1). A kNext predecessor's old implicit
        // successor is orphaned from *this* cons — its ownership already
        // lives with whoever holds the old cdr value.
        if (slot.code == CdrCode::kNext) {
          gcShadeWord(HeapWord::pointer(c + 1));  // the orphaned successor
        }
        const CellRef fresh = allocPair();
        ++stats_.reads;
        cells_[fresh] = Cell{cells_[c].car, CdrCode::kNormal, false};
        cells_[fresh + 1] = Cell{toCdr(value), CdrCode::kError, false};
        cells_[c].car = CdrWord::invisible(fresh);
        stats_.writes += 3;
        ++invisibles_;
        gcNoteAlloc(fresh, 2);
        if (!isYoung(c)) gcRemember(fresh);  // old cell now forwards here
        return;
      }
    }
  }

  SplitResult split(CellRef cell) override {
    const CellRef c = resolveFreeing(cell);
    const Cell snapshot = at(c);
    if (snapshot.free) {
      throw SimulationError("CdrCodedBackend: split of a freed cell");
    }
    ++stats_.splits;
    ++stats_.reads;
    const HeapWord carWord = toWord(snapshot.car);
    HeapWord cdrWord;
    switch (snapshot.code) {
      case CdrCode::kNext:
        // The rest of the run survives; ownership moves to the cdr word.
        cdrWord = HeapWord::pointer(c + 1);
        freeSingle(c);
        break;
      case CdrCode::kNil:
        cdrWord = HeapWord::nil();
        freeSingle(c);
        break;
      case CdrCode::kNormal:
        ++stats_.reads;
        cdrWord = toWord(at(c + 1).car);
        freePair(c);
        break;
      case CdrCode::kError:
        throw SimulationError("CdrCodedBackend: split of a cdr-error cell");
    }
    // The destroyed cell's words escape to the owner's table: keep their
    // targets in an in-flight cycle's snapshot.
    gcShadeWord(carWord);
    gcShadeWord(cdrWord);
    return {carWord, cdrWord};
  }

  CellRef merge(HeapWord car, HeapWord cdr) override {
    ++stats_.merges;
    return allocate(car, cdr);
  }

  HeapWord encode(const sexpr::Arena& arena, sexpr::NodeRef root) override {
    switch (arena.kind(root)) {
      case sexpr::NodeKind::kNil:
        return HeapWord::nil();
      case sexpr::NodeKind::kSymbol:
        return HeapWord::symbol(arena.symbolId(root));
      case sexpr::NodeKind::kInteger:
        return HeapWord::integer(arena.integerValue(root));
      case sexpr::NodeKind::kCons:
        break;
    }
    // Vectorized run layout, as in CdrCodedHeap::encode: gather the
    // spine, encode element sublists first, then lay the run out in
    // consecutive fresh cells (runs need contiguity, so the free pool is
    // not consulted here — representation fragmentation is the price of
    // vector coding and shows up in cellsAllocated).
    std::vector<sexpr::NodeRef> spine;
    sexpr::NodeRef cursor = root;
    while (arena.kind(cursor) == sexpr::NodeKind::kCons) {
      spine.push_back(cursor);
      cursor = arena.cdr(cursor);
    }
    const bool properList = arena.isNil(cursor);

    std::vector<CdrWord> heads;
    heads.reserve(spine.size());
    for (const sexpr::NodeRef node : spine) {
      heads.push_back(toCdr(encode(arena, arena.car(node))));
    }
    const CdrWord tail =
        properList ? CdrWord::nil() : toCdr(encode(arena, cursor));

    const CellRef start = cells_.size();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      Cell cell;
      cell.car = heads[i];
      const bool last = i + 1 == heads.size();
      cell.code = !last ? CdrCode::kNext
                        : (properList ? CdrCode::kNil : CdrCode::kNormal);
      cells_.push_back(cell);
    }
    if (!properList) {
      Cell errorCell;
      errorCell.car = tail;
      errorCell.code = CdrCode::kError;
      cells_.push_back(errorCell);
    }
    const std::uint64_t laid = cells_.size() - start;
    stats_.allocs += heads.size();
    stats_.writes += laid;
    noteAlloc(laid);
    gcNoteAlloc(start, laid);
    return HeapWord::pointer(start);
  }

  std::uint64_t cellsAllocated() const override { return cells_.size(); }

  std::uint64_t invisibleCount() const { return invisibles_; }

 protected:
  // Invisible forwarding chains are marked as part of the object that
  // forwards through them (they die together, they live together); a
  // cdr-normal head marks its cdr-error partner; a cdr-next cell's
  // implicit successor is part of the same run and traces as a cell of
  // its own.
  void gcVisit(CellRef cell) override {
    while (true) {
      if (cell >= gcMarked_.size()) return;  // post-snapshot: black
      if (cells_[cell].free) return;         // stale gray/shade target
      if (gcYoungOnly() && !isYoung(cell)) return;
      if (gcMarked_[cell]) return;
      if (cells_[cell].car.tag == CdrWord::Tag::kInvisible) {
        gcMarked_[cell] = true;
        ++stats_.reads;
        cell = cells_[cell].car.payload;
        continue;
      }
      gcMarked_[cell] = true;
      gcGray_.push_back(cell);
      return;
    }
  }

  void gcTraceOne(CellRef cell, CollectResult& result) override {
    if (cells_[cell].free) return;  // freed after it went gray
    ++result.traced;
    const Cell& slot = cells_[cell];
    ++stats_.reads;
    if (slot.car.isPointer()) gcVisit(slot.car.payload);
    switch (slot.code) {
      case CdrCode::kNext:
        gcVisit(cell + 1);
        break;
      case CdrCode::kNil:
        break;
      case CdrCode::kNormal: {
        if (cell + 1 < gcMarked_.size()) gcMarked_[cell + 1] = true;
        ++stats_.reads;
        const CdrWord tail = cells_[cell + 1].car;
        if (tail.isPointer()) gcVisit(tail.payload);
        break;
      }
      case CdrCode::kError:
        throw SimulationError(
            "CdrCodedBackend: collectGarbage traced into a cdr-error "
            "cell");
    }
  }

  // Sweep one position. An unmarked cdr-normal head takes its partner
  // with it (freePair), so a directly encountered live-looking cdr-error
  // cell means the store is corrupt (a young sweep visits heads before
  // partners, so partners are always freed or marked by then).
  void gcSweepAt(CellRef cell, CollectResult& result) override {
    const Cell& slot = cells_[cell];
    if (slot.free) return;
    ++stats_.reads;
    if (gcMarked_[cell]) return;
    if (slot.car.tag == CdrWord::Tag::kInvisible) {
      freeSingle(cell);
      ++result.reclaimed;
      return;
    }
    switch (slot.code) {
      case CdrCode::kNext:
      case CdrCode::kNil:
        freeSingle(cell);
        ++result.reclaimed;
        break;
      case CdrCode::kNormal:
        freePair(cell);
        result.reclaimed += 2;
        break;
      case CdrCode::kError:
        throw SimulationError(
            "CdrCodedBackend: collectGarbage swept an orphaned cdr-error "
            "cell");
    }
  }

 private:
  struct Cell {
    CdrWord car;
    CdrCode code = CdrCode::kNil;
    bool free = false;
  };

  static CdrWord toCdr(HeapWord word) {
    switch (word.tag) {
      case HeapWord::Tag::kNil:
        return CdrWord::nil();
      case HeapWord::Tag::kPointer:
        return CdrWord::pointer(word.payload);
      case HeapWord::Tag::kSymbol:
        return CdrWord::symbol(word.payload);
      case HeapWord::Tag::kInteger:
        return {CdrWord::Tag::kInteger, word.payload};
    }
    throw Error("CdrCodedBackend: unreachable word tag");
  }

  static HeapWord toWord(CdrWord word) {
    switch (word.tag) {
      case CdrWord::Tag::kNil:
        return HeapWord::nil();
      case CdrWord::Tag::kPointer:
        return HeapWord::pointer(word.payload);
      case CdrWord::Tag::kSymbol:
        return HeapWord::symbol(word.payload);
      case CdrWord::Tag::kInteger:
        return {HeapWord::Tag::kInteger, word.payload};
      case CdrWord::Tag::kInvisible:
        throw SimulationError(
            "CdrCodedBackend: invisible pointer escaped resolution");
    }
    throw Error("CdrCodedBackend: unreachable cdr word tag");
  }

  Cell& at(CellRef cell) {
    if (cell >= cells_.size()) throw Error("CdrCodedBackend: bad cell ref");
    return cells_[cell];
  }
  const Cell& at(CellRef cell) const {
    if (cell >= cells_.size()) throw Error("CdrCodedBackend: bad cell ref");
    return cells_[cell];
  }

  /// Chase invisible pointers ("hardware" forwarding: a dependent read
  /// per hop).
  CellRef resolve(CellRef cell) const {
    while (at(cell).car.tag == CdrWord::Tag::kInvisible) {
      ++stats_.reads;
      cell = at(cell).car.payload;
    }
    return cell;
  }

  /// Resolve while freeing the forwarding chain — used when the cons
  /// itself is being consumed (split/free), taking its forwarders along.
  CellRef resolveFreeing(CellRef cell) {
    while (at(cell).car.tag == CdrWord::Tag::kInvisible) {
      const CellRef next = at(cell).car.payload;
      ++stats_.reads;
      freeSingle(cell);
      cell = next;
    }
    return cell;
  }

  /// Free the (already resolved) cons at `cell`.
  void freeCons(CellRef cell) {
    switch (at(cell).code) {
      case CdrCode::kNext:
      case CdrCode::kNil:
        freeSingle(cell);
        return;
      case CdrCode::kNormal:
        freePair(cell);
        return;
      case CdrCode::kError:
        throw SimulationError("CdrCodedBackend: free of a cdr-error cell");
    }
  }

  CellRef allocSingle() {
    if (!freeSingles_.empty()) {
      const CellRef cell = freeSingles_.back();
      freeSingles_.pop_back();
      noteAlloc(1);
      return cell;
    }
    if (!freePairs_.empty()) {
      const CellRef cell = freePairs_.back();
      freePairs_.pop_back();
      freeSingles_.push_back(cell + 1);
      noteAlloc(1);
      return cell;
    }
    cells_.push_back(Cell{});
    noteAlloc(1);
    return cells_.size() - 1;
  }

  CellRef allocPair() {
    if (!freePairs_.empty()) {
      const CellRef cell = freePairs_.back();
      freePairs_.pop_back();
      noteAlloc(2);
      return cell;
    }
    cells_.push_back(Cell{});
    cells_.push_back(Cell{});
    noteAlloc(2);
    return cells_.size() - 2;
  }

  void freeSingle(CellRef cell) {
    Cell& slot = at(cell);
    if (slot.free) throw SimulationError("CdrCodedBackend: double free");
    slot = Cell{};
    slot.free = true;
    ++stats_.writes;
    noteFree(1);
    freeSingles_.push_back(cell);
  }

  void freePair(CellRef cell) {
    Cell& first = at(cell);
    Cell& second = at(cell + 1);
    if (first.free || second.free) {
      throw SimulationError("CdrCodedBackend: double free");
    }
    first = Cell{};
    first.free = true;
    second = Cell{};
    second.free = true;
    stats_.writes += 2;
    noteFree(2);
    freePairs_.push_back(cell);
  }

  std::vector<Cell> cells_;
  std::vector<CellRef> freeSingles_;
  std::vector<CellRef> freePairs_;  ///< adjacent (c, c+1) pairs
  std::uint64_t invisibles_ = 0;
};

// ---------------------------------------------------------------------------
// Linked-vector backend (Fig 2.7, [Li85a]): lists live in fixed-size
// vectors of tagged elements; the cdr is implicitly the next element,
// with indirection elements at vector boundaries (the exception case) and
// explicit cdr slots for dotted tails and merge-produced conses. The
// vector size trades internal fragmentation against indirection overhead.
// ---------------------------------------------------------------------------

class LinkedVectorBackend final : public HeapBackend {
 public:
  explicit LinkedVectorBackend(std::uint32_t vectorSize)
      : vectorSize_(vectorSize) {
    if (vectorSize < 3) {
      throw Error("LinkedVectorBackend: vector size must be >= 3");
    }
  }

  const char* name() const override { return "linked-vector"; }

  CellRef allocate(HeapWord car, HeapWord cdr) override {
    ++stats_.allocs;
    if (cdr.tag == HeapWord::Tag::kNil) {
      const CellRef ref = allocSingle();
      elements_[ref] = Element{Tag::kCdrNil, car};
      ++stats_.writes;
      gcNoteAlloc(ref, 1);
      return ref;
    }
    const CellRef ref = allocPair();
    elements_[ref] = Element{Tag::kCdrCell, car};
    elements_[ref + 1] = Element{Tag::kCdrSlot, cdr};
    stats_.writes += 2;
    gcNoteAlloc(ref, 2);
    return ref;
  }

  void free(CellRef cell) override { freeCons(resolveFreeing(cell)); }

  std::uint64_t freeObject(CellRef root) override {
    std::uint64_t reclaimed = 0;
    std::vector<CellRef> stack{root};
    while (!stack.empty()) {
      CellRef ref = stack.back();
      stack.pop_back();
      if (ref >= elements_.size() || elements_[ref].tag == Tag::kUnused) {
        continue;
      }
      while (elements_[ref].tag == Tag::kIndirect) {
        const CellRef next = elements_[ref].value.payload;
        ++stats_.reads;
        freeSlot(ref);
        ++reclaimed;
        ref = next;
        if (ref >= elements_.size() ||
            elements_[ref].tag == Tag::kUnused) {
          break;
        }
      }
      if (ref >= elements_.size() || elements_[ref].tag == Tag::kUnused) {
        continue;
      }
      const Element& element = elements_[ref];
      ++stats_.reads;
      if (element.value.isPointer()) stack.push_back(element.value.payload);
      switch (element.tag) {
        case Tag::kNext:
          stack.push_back(ref + 1);
          freeSlot(ref);
          ++reclaimed;
          break;
        case Tag::kCdrNil:
          freeSlot(ref);
          ++reclaimed;
          break;
        case Tag::kCdrCell: {
          ++stats_.reads;
          const HeapWord tail = elements_[ref + 1].value;
          if (tail.isPointer()) stack.push_back(tail.payload);
          freeSlot(ref + 1);
          freeSlot(ref);
          reclaimed += 2;
          freePairs_.push_back(ref);
          // freeSlot pushed both halves as singles; undo in favor of the
          // pair list so merges can reuse adjacent slots.
          freeSingles_.pop_back();
          freeSingles_.pop_back();
          break;
        }
        case Tag::kCdrSlot:
        case Tag::kIndirect:
        case Tag::kUnused:
          throw SimulationError(
              "LinkedVectorBackend: freeObject entered a non-cons element");
      }
    }
    return reclaimed;
  }

  HeapWord car(CellRef cell) const override {
    const CellRef ref = resolve(cell);
    ++stats_.reads;
    return at(ref).value;
  }

  HeapWord cdr(CellRef cell) const override {
    const CellRef ref = resolve(cell);
    ++stats_.reads;
    switch (at(ref).tag) {
      case Tag::kNext:
        // The element's cdr is the next slot: address arithmetic only.
        return HeapWord::pointer(ref + 1);
      case Tag::kCdrNil:
        return HeapWord::nil();
      case Tag::kCdrCell:
        ++stats_.reads;
        return at(ref + 1).value;
      case Tag::kCdrSlot:
      case Tag::kIndirect:
      case Tag::kUnused:
        throw SimulationError(
            "LinkedVectorBackend: cdr of a non-cons element");
    }
    throw Error("LinkedVectorBackend: unreachable element tag");
  }

  void setCar(CellRef cell, HeapWord value) override {
    const CellRef ref = resolve(cell);
    if (gcMarking()) gcShadeWord(at(ref).value);
    if (value.isPointer() && !isYoung(ref)) gcRemember(value.payload);
    ++stats_.writes;
    at(ref).value = value;
  }

  void setCdr(CellRef cell, HeapWord value) override {
    const CellRef ref = resolve(cell);
    Element& element = at(ref);
    switch (element.tag) {
      case Tag::kCdrCell:
        if (gcMarking()) gcShadeWord(at(ref + 1).value);
        if (value.isPointer() && !isYoung(ref)) gcRemember(value.payload);
        ++stats_.writes;
        at(ref + 1).value = value;
        return;
      case Tag::kNext:
      case Tag::kCdrNil: {
        // The exception case: copy out to an explicit-cdr pair elsewhere
        // and leave an indirection element behind.
        if (element.tag == Tag::kNext) {
          gcShadeWord(HeapWord::pointer(ref + 1));  // orphaned successor
        }
        const CellRef fresh = allocPair();
        ++stats_.reads;
        elements_[fresh] = Element{Tag::kCdrCell, elements_[ref].value};
        elements_[fresh + 1] = Element{Tag::kCdrSlot, value};
        elements_[ref] =
            Element{Tag::kIndirect, HeapWord::pointer(fresh)};
        stats_.writes += 3;
        ++indirections_;
        gcNoteAlloc(fresh, 2);
        if (!isYoung(ref)) gcRemember(fresh);  // old cell now forwards here
        return;
      }
      case Tag::kCdrSlot:
      case Tag::kIndirect:
      case Tag::kUnused:
        throw SimulationError(
            "LinkedVectorBackend: rplacd of a non-cons element");
    }
  }

  SplitResult split(CellRef cell) override {
    const CellRef ref = resolveFreeing(cell);
    const Element snapshot = at(ref);
    ++stats_.splits;
    ++stats_.reads;
    const HeapWord carWord = snapshot.value;
    HeapWord cdrWord;
    switch (snapshot.tag) {
      case Tag::kNext:
        cdrWord = HeapWord::pointer(ref + 1);
        freeSlot(ref);
        break;
      case Tag::kCdrNil:
        cdrWord = HeapWord::nil();
        freeSlot(ref);
        break;
      case Tag::kCdrCell:
        ++stats_.reads;
        cdrWord = at(ref + 1).value;
        freeSlot(ref + 1);
        freeSlot(ref);
        freePairs_.push_back(ref);
        freeSingles_.pop_back();
        freeSingles_.pop_back();
        break;
      case Tag::kCdrSlot:
      case Tag::kIndirect:
      case Tag::kUnused:
        throw SimulationError(
            "LinkedVectorBackend: split of a non-cons element");
    }
    // The destroyed element's words escape to the owner's table: keep
    // their targets in an in-flight cycle's snapshot.
    gcShadeWord(carWord);
    gcShadeWord(cdrWord);
    return {carWord, cdrWord};
  }

  CellRef merge(HeapWord car, HeapWord cdr) override {
    ++stats_.merges;
    return allocate(car, cdr);
  }

  HeapWord encode(const sexpr::Arena& arena, sexpr::NodeRef root) override {
    switch (arena.kind(root)) {
      case sexpr::NodeKind::kNil:
        return HeapWord::nil();
      case sexpr::NodeKind::kSymbol:
        return HeapWord::symbol(arena.symbolId(root));
      case sexpr::NodeKind::kInteger:
        return HeapWord::integer(arena.integerValue(root));
      case sexpr::NodeKind::kCons:
        break;
    }
    // Gather the spine; sublists and the dotted tail encode first.
    std::vector<sexpr::NodeRef> spine;
    sexpr::NodeRef cursor = root;
    while (arena.kind(cursor) == sexpr::NodeKind::kCons) {
      spine.push_back(cursor);
      cursor = arena.cdr(cursor);
    }
    const bool properList = arena.isNil(cursor);
    std::vector<HeapWord> heads;
    heads.reserve(spine.size());
    for (const sexpr::NodeRef node : spine) {
      heads.push_back(encode(arena, arena.car(node)));
    }
    const HeapWord tail =
        properList ? HeapWord::nil() : encode(arena, cursor);

    // Lay the run out vector by vector. Invariant on entering each
    // iteration: the current slot is <= vectorSize_-2, so one more slot
    // is always adjacent — for the next run element, a dotted-tail cdr
    // slot, or the indirection element that continues the run in a
    // fresh vector. A kNext element forces its successor to the very
    // next slot, so continuation decisions are made by the predecessor.
    if (!haveVector_ || slotInCurrentVector_ > vectorSize_ - 2) {
      openVector();
    }
    CellRef first = 0;
    for (std::size_t i = 0; i < heads.size(); ++i) {
      const bool last = i + 1 == heads.size();
      const CellRef ref = currentBase_ + slotInCurrentVector_;
      if (i == 0) first = ref;
      Element& element = elements_[ref];
      element.value = heads[i];
      ++stats_.writes;
      noteAlloc(1);
      ++stats_.allocs;
      ++slotInCurrentVector_;
      if (last) {
        if (properList) {
          element.tag = Tag::kCdrNil;
          gcNoteAlloc(ref, 1);
        } else {
          element.tag = Tag::kCdrCell;
          Element& slot = elements_[ref + 1];
          slot.tag = Tag::kCdrSlot;
          slot.value = tail;
          ++stats_.writes;
          noteAlloc(1);
          ++slotInCurrentVector_;
          gcNoteAlloc(ref, 2);
        }
      } else if (slotInCurrentVector_ <= vectorSize_ - 2) {
        element.tag = Tag::kNext;  // successor fits in this vector
        gcNoteAlloc(ref, 1);
      } else {
        // Successor would land on the vector's last slot, where *its*
        // adjacent slot could not follow: continue through an
        // indirection element instead.
        element.tag = Tag::kNext;
        const CellRef indirectRef = ref + 1;
        ++slotInCurrentVector_;
        openVector();
        Element& indirect = elements_[indirectRef];
        indirect.tag = Tag::kIndirect;
        indirect.value = HeapWord::pointer(currentBase_);
        stats_.writes += 2;
        noteAlloc(1);
        ++indirections_;
        gcNoteAlloc(ref, 2);  // the element and its indirection slot
      }
    }
    return HeapWord::pointer(first);
  }

  std::uint64_t cellsAllocated() const override { return elements_.size(); }

  std::uint64_t indirectionCount() const { return indirections_; }
  std::uint64_t vectorsAllocated() const { return vectors_; }

 protected:
  // Mark, with the same shape discipline as freeObject: indirection
  // chains mark with the object forwarding through them, a kCdrCell
  // head marks its cdr slot, a kNext element's successor is the next
  // slot of the same run.
  void gcVisit(CellRef ref) override {
    while (true) {
      if (ref >= gcMarked_.size()) return;  // post-snapshot: black
      if (elements_[ref].tag == Tag::kUnused) return;  // stale ref
      if (gcYoungOnly() && !isYoung(ref)) return;
      if (gcMarked_[ref]) return;
      if (elements_[ref].tag == Tag::kIndirect) {
        gcMarked_[ref] = true;
        ++stats_.reads;
        ref = elements_[ref].value.payload;
        continue;
      }
      gcMarked_[ref] = true;
      gcGray_.push_back(ref);
      return;
    }
  }

  void gcTraceOne(CellRef ref, CollectResult& result) override {
    if (elements_[ref].tag == Tag::kUnused) return;  // freed while gray
    ++result.traced;
    const Element& element = elements_[ref];
    ++stats_.reads;
    if (element.value.isPointer()) gcVisit(element.value.payload);
    switch (element.tag) {
      case Tag::kNext:
        gcVisit(ref + 1);
        break;
      case Tag::kCdrNil:
        break;
      case Tag::kCdrCell: {
        if (ref + 1 < gcMarked_.size()) gcMarked_[ref + 1] = true;
        ++stats_.reads;
        const HeapWord tail = elements_[ref + 1].value;
        if (tail.isPointer()) gcVisit(tail.payload);
        break;
      }
      case Tag::kCdrSlot:
      case Tag::kIndirect:
      case Tag::kUnused:
        throw SimulationError(
            "LinkedVectorBackend: collectGarbage traced a non-cons "
            "element");
    }
  }

  // Sweep one element-store position. An unmarked kCdrCell head frees
  // its pair with the usual adjacent-pair bookkeeping; a directly
  // encountered unmarked cdr slot means its head vanished without it.
  void gcSweepAt(CellRef ref, CollectResult& result) override {
    const Element& element = elements_[ref];
    if (element.tag == Tag::kUnused) return;
    ++stats_.reads;
    if (gcMarked_[ref]) return;
    switch (element.tag) {
      case Tag::kNext:
      case Tag::kCdrNil:
      case Tag::kIndirect:
        freeSlot(ref);
        ++result.reclaimed;
        break;
      case Tag::kCdrCell:
        freeSlot(ref + 1);
        freeSlot(ref);
        freePairs_.push_back(ref);
        freeSingles_.pop_back();
        freeSingles_.pop_back();
        result.reclaimed += 2;
        break;
      case Tag::kCdrSlot:
        throw SimulationError(
            "LinkedVectorBackend: collectGarbage swept an orphaned cdr "
            "slot");
      case Tag::kUnused:
        break;
    }
  }

 private:
  enum class Tag : std::uint8_t {
    kNext,      ///< car element; cdr is the next slot
    kCdrNil,    ///< car element; cdr is nil (end of run)
    kCdrCell,   ///< car element; explicit cdr word in the next slot
    kCdrSlot,   ///< second half of a kCdrCell pair
    kIndirect,  ///< continuation pointer (the exception element)
    kUnused,    ///< free slot
  };

  struct Element {
    Tag tag = Tag::kUnused;
    HeapWord value;
  };

  Element& at(CellRef ref) {
    if (ref >= elements_.size()) {
      throw Error("LinkedVectorBackend: bad element ref");
    }
    return elements_[ref];
  }
  const Element& at(CellRef ref) const {
    if (ref >= elements_.size()) {
      throw Error("LinkedVectorBackend: bad element ref");
    }
    return elements_[ref];
  }

  CellRef resolve(CellRef ref) const {
    while (at(ref).tag == Tag::kIndirect) {
      ++stats_.reads;
      ref = at(ref).value.payload;
    }
    return ref;
  }

  CellRef resolveFreeing(CellRef ref) {
    while (at(ref).tag == Tag::kIndirect) {
      const CellRef next = at(ref).value.payload;
      ++stats_.reads;
      freeSlot(ref);
      ref = next;
    }
    return ref;
  }

  void freeCons(CellRef ref) {
    switch (at(ref).tag) {
      case Tag::kNext:
      case Tag::kCdrNil:
        freeSlot(ref);
        return;
      case Tag::kCdrCell:
        freeSlot(ref + 1);
        freeSlot(ref);
        freePairs_.push_back(ref);
        freeSingles_.pop_back();
        freeSingles_.pop_back();
        return;
      case Tag::kCdrSlot:
      case Tag::kIndirect:
      case Tag::kUnused:
        throw SimulationError(
            "LinkedVectorBackend: free of a non-cons element");
    }
  }

  void openVector() {
    // Remaining slots of the abandoned vector become reusable singles.
    while (haveVector_ && slotInCurrentVector_ < vectorSize_) {
      freeSingles_.push_back(currentBase_ + slotInCurrentVector_);
      ++slotInCurrentVector_;
    }
    currentBase_ = elements_.size();
    elements_.resize(elements_.size() + vectorSize_);
    ++vectors_;
    slotInCurrentVector_ = 0;
    haveVector_ = true;
  }

  CellRef allocSingle() {
    if (!freeSingles_.empty()) {
      const CellRef ref = freeSingles_.back();
      freeSingles_.pop_back();
      noteAlloc(1);
      return ref;
    }
    if (!freePairs_.empty()) {
      const CellRef ref = freePairs_.back();
      freePairs_.pop_back();
      freeSingles_.push_back(ref + 1);
      noteAlloc(1);
      return ref;
    }
    if (!haveVector_ || slotInCurrentVector_ >= vectorSize_) openVector();
    const CellRef ref = currentBase_ + slotInCurrentVector_;
    ++slotInCurrentVector_;
    noteAlloc(1);
    return ref;
  }

  CellRef allocPair() {
    if (!freePairs_.empty()) {
      const CellRef ref = freePairs_.back();
      freePairs_.pop_back();
      noteAlloc(2);
      return ref;
    }
    if (!haveVector_ || slotInCurrentVector_ + 2 > vectorSize_) {
      openVector();
    }
    const CellRef ref = currentBase_ + slotInCurrentVector_;
    slotInCurrentVector_ += 2;
    noteAlloc(2);
    return ref;
  }

  void freeSlot(CellRef ref) {
    Element& element = at(ref);
    if (element.tag == Tag::kUnused) {
      throw SimulationError("LinkedVectorBackend: double free");
    }
    element = Element{};
    ++stats_.writes;
    noteFree(1);
    freeSingles_.push_back(ref);
  }

  std::uint32_t vectorSize_;
  std::vector<Element> elements_;
  std::vector<CellRef> freeSingles_;
  std::vector<CellRef> freePairs_;  ///< adjacent, same-vector pairs
  std::uint64_t vectors_ = 0;
  std::uint64_t indirections_ = 0;
  CellRef currentBase_ = 0;
  std::uint32_t slotInCurrentVector_ = 0;
  bool haveVector_ = false;
};

}  // namespace

const char* heapBackendName(HeapBackendKind kind) {
  switch (kind) {
    case HeapBackendKind::kTwoPointer:
      return "two-pointer";
    case HeapBackendKind::kCdrCoded:
      return "cdr-coded";
    case HeapBackendKind::kLinkedVector:
      return "linked-vector";
  }
  return "?";
}

std::unique_ptr<HeapBackend> makeHeapBackend(HeapBackendKind kind,
                                             const HeapBackendOptions&
                                                 options) {
  switch (kind) {
    case HeapBackendKind::kTwoPointer:
      return std::make_unique<TwoPointerBackend>();
    case HeapBackendKind::kCdrCoded:
      return std::make_unique<CdrCodedBackend>();
    case HeapBackendKind::kLinkedVector:
      return std::make_unique<LinkedVectorBackend>(options.vectorSize);
  }
  throw Error("makeHeapBackend: unknown backend kind");
}

}  // namespace small::heap
