// The conc representation ([Kell80a], §2.3.3.1).
//
// "The conc representation calls its vectors tuples. A tuple is a list of
//  elements stored in contiguous memory locations. It is accessed through
//  a descriptor which specifies the number of elements in the tuple, and
//  a pointer to the beginning of the tuple. There are special tuples
//  called conc cells whose elements are pointers to other conc cells or
//  to tuples. Conc cells are used to implement list concatenation without
//  having to modify the list structure."
//
// The headline property: `conc` is O(1) (allocate one conc cell), versus
// the two-pointer representation's append, which copies the first list's
// spine — the contrast the representation micro-bench measures.
#pragma once

#include <cstdint>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::heap {

class ConcHeap {
 public:
  /// Descriptor index; descriptors name either a tuple run or a conc cell.
  using DescRef = std::uint32_t;

  struct Element {
    enum class Tag : std::uint8_t { kNil, kSymbol, kInteger, kList };
    Tag tag = Tag::kNil;
    std::uint64_t payload = 0;  ///< symbol/integer bits, or a DescRef
  };

  /// Encode a proper list (possibly nested); dotted tails are not
  /// representable. Returns the descriptor.
  DescRef encode(const sexpr::Arena& arena, sexpr::NodeRef list);

  /// O(1) concatenation: a conc cell over the two descriptors.
  DescRef conc(DescRef left, DescRef right);

  /// Rebuild the s-expression (flattening conc cells).
  sexpr::NodeRef decode(sexpr::Arena& arena, DescRef ref) const;

  /// Total elements under a descriptor (tuples' lengths summed through
  /// conc cells) — O(depth of the conc tree), not O(n), because each
  /// descriptor caches its length.
  std::uint64_t length(DescRef ref) const;

  /// Element at `index` in left-to-right order: descriptor navigation by
  /// cached lengths, then direct tuple indexing — the vector-coded
  /// random-access win.
  Element elementAt(DescRef ref, std::uint64_t index) const;

  // --- accounting ---
  std::uint64_t tupleCount() const { return tuples_; }
  std::uint64_t concCellCount() const { return concCells_; }
  std::uint64_t elementWords() const { return elements_.size(); }

 private:
  struct Descriptor {
    bool isConc = false;
    // Tuple: [start, start+length) in elements_. Conc: left/right refs.
    std::uint64_t start = 0;
    std::uint64_t length = 0;  ///< cached total element count
    DescRef left = 0;
    DescRef right = 0;
  };

  const Descriptor& at(DescRef ref) const;
  DescRef makeTuple(const std::vector<Element>& elements);

  std::vector<Descriptor> descriptors_;
  std::vector<Element> elements_;
  std::uint64_t tuples_ = 0;
  std::uint64_t concCells_ = 0;
};

}  // namespace small::heap
