#!/usr/bin/env bash
# Byte-identical differential gate for the 22 table/figure bench texts.
#
# Runs every table/figure bench from BUILD_DIR (default: build) with its
# golden arguments and diffs stdout against bench/goldens/<name>.txt.
# Any drift fails the gate; a refactor that is supposed to be behavior-
# preserving must leave all 22 texts untouched. Benches whose numbers
# legitimately change (a bugfix altering modeled behavior) must regenerate
# their goldens in the same commit:
#
#   tools/check_bench_goldens.sh --update   # rewrite goldens from HEAD
#
# TRACE_FORMAT=text|binary appends --trace-format to every bench, which
# round-trips each prepared workload trace through an on-disk file in that
# format before use. The goldens are shared across modes: running the gate
# with TRACE_FORMAT=binary proves the binary format is a lossless mirror
# of the text format all the way through the simulator (CI does both).
#
# The micro suites are intentionally not gated: their output contains
# wall-clock timings.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
goldens="$repo/bench/goldens"
update=0
[[ "${1:-}" == "--update" ]] && update=1

format_args=()
if [[ -n "${TRACE_FORMAT:-}" ]]; then
  case "$TRACE_FORMAT" in
    text|binary) format_args=(--trace-format "$TRACE_FORMAT") ;;
    *)
      echo "check_bench_goldens: bad TRACE_FORMAT '$TRACE_FORMAT'" >&2
      exit 2
      ;;
  esac
fi

# bench binary -> golden stem + extra args. table5_4 contributes two
# texts: the default table and the --sweep variant.
runs=(
  "clark_linearization|clark_linearization|"
  "fig3_1_primitive_frequencies|fig3_1_primitive_frequencies|"
  "fig3_4_6_list_sets|fig3_4_6_list_sets|"
  "fig3_7_lru_stack|fig3_7_lru_stack|"
  "fig3_8_13_sensitivity|fig3_8_13_sensitivity|"
  "fig4_10_13_timing|fig4_10_13_timing|"
  "fig5_1_2_lpt_size|fig5_1_2_lpt_size|"
  "fig5_3_compression_policy|fig5_3_compression_policy|"
  "fig5_5_line_size|fig5_5_line_size|"
  "gc_comparison|gc_comparison|"
  "heap_backend_comparison|heap_backend_comparison|"
  "m3l_truncated_counts|m3l_truncated_counts|"
  "multilisp_weights|multilisp_weights|"
  "table3_1_np|table3_1_np|"
  "table3_2_chaining|table3_2_chaining|"
  "table5_1_trace_content|table5_1_trace_content|"
  "table5_2_3_lpt_activity|table5_2_3_lpt_activity|"
  "table5_4_lpt_vs_cache|table5_4_lpt_vs_cache|"
  "table5_4_lpt_vs_cache|table5_4_lpt_vs_cache.sweep|--sweep"
  "table5_5_param_sensitivity|table5_5_param_sensitivity|"
  "traversal_hit_rate|traversal_hit_rate|"
  "workload_scale|workload_scale|--quick"
)

fail=0
for spec in "${runs[@]}"; do
  IFS='|' read -r bin stem args <<<"$spec"
  exe="$build/bench/$bin"
  if [[ ! -x "$exe" ]]; then
    echo "MISSING BINARY: $exe" >&2
    fail=1
    continue
  fi
  # A bench that exits nonzero must fail the gate with its own message,
  # not silently contribute empty output (or abort the loop via set -e).
  status=0
  out="$("$exe" $args ${format_args[@]+"${format_args[@]}"})" || status=$?
  if [[ "$status" != 0 ]]; then
    echo "BENCH FAILED: $bin $args (exit $status)" >&2
    fail=1
    continue
  fi
  golden="$goldens/$stem.txt"
  if [[ "$update" == 1 ]]; then
    printf '%s\n' "$out" >"$golden"
    echo "updated $stem"
    continue
  fi
  # A missing golden is a broken gate, not a diff: name it loudly so a
  # renamed bench or a forgotten `git add` can't pass as "no drift".
  if [[ ! -f "$golden" ]]; then
    echo "MISSING GOLDEN: $golden (run with --update and commit it)" >&2
    fail=1
    continue
  fi
  if ! diff -u "$golden" <(printf '%s\n' "$out") >/tmp/golden_diff.$$ 2>&1; then
    echo "GOLDEN DRIFT: $stem" >&2
    cat /tmp/golden_diff.$$ >&2
    fail=1
  else
    echo "ok $stem"
  fi
  rm -f /tmp/golden_diff.$$
done

if [[ "$fail" != 0 ]]; then
  echo "bench golden gate FAILED" >&2
  exit 1
fi
mode="${TRACE_FORMAT:-direct}"
echo "bench golden gate passed: ${#runs[@]} texts byte-identical ($mode traces)"
