// trace_gen — stream a scenario workload family straight to a trace
// file at any scale.
//
//   trace_gen --family F --scale N --out FILE [options] [family knobs]
//
//   --family agent-loop|thunk-heavy|session-churn
//   --scale N          primitive events to emit (accepts 1e8 forms)
//   --out FILE         output path (atomic: temp file + rename)
//   --format binary|text   SMTR (default) or the line-oriented text form
//   --seed N           generator seed (default 1)
//   --replay           after writing, mmap the output and replay it
//                      through the SMALL machine (binary format only)
//   --knobs            list the chosen family's knobs and exit
//
// The binary path generates through trace::BinaryWriter, so peak memory
// is O(flush buffer) no matter the scale — a 10^9-primitive SMTR trace
// streams to disk without ever existing in memory, and --replay then
// closes the loop (generate -> mmap -> incremental preprocess -> replay)
// with the same O(batch) bound, which CI asserts under a hard address-
// space ceiling. Every numeric argument is parsed strictly
// (support/parse.hpp): 0 where a positive value is required, signs,
// overflow, non-integral scales, and trailing garbage all exit 2.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#else
#include <process.h>
#define getpid _getpid
#endif

#include "small/machine_replay.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "workloads/families/family.hpp"

namespace {

using namespace small;
namespace fam = workloads::families;

int usage(std::FILE* out) {
  std::fputs(
      "usage: trace_gen --family F --scale N --out FILE\n"
      "                 [--format binary|text] [--seed N] [--replay]\n"
      "                 [--knobs] [family knobs]\n"
      "families: agent-loop, thunk-heavy, session-churn\n"
      "--knobs lists the chosen family's tunable knobs; --replay mmaps\n"
      "the written binary trace and replays it through the SMALL\n"
      "machine (O(batch) memory end to end).\n",
      out);
  return out == stdout ? 0 : 2;
}

[[noreturn]] void badValue(const char* flag, const char* text) {
  std::fprintf(stderr, "trace_gen: bad value '%s' for %s\n", text, flag);
  usage(stderr);
  std::exit(2);
}

void printStats(const fam::FamilyStats& stats) {
  std::printf("primitives: %llu (events %llu, function calls %llu, max "
              "depth %u)\n",
              (unsigned long long)stats.primitives,
              (unsigned long long)stats.events,
              (unsigned long long)stats.functionCalls,
              stats.maxCallDepth);
  std::printf("objects: %llu created, %llu peak live in generator\n",
              (unsigned long long)stats.objectsCreated,
              (unsigned long long)stats.liveObjectsPeak);
  std::printf("mix:");
  for (std::size_t i = 0; i < trace::kPrimitiveCount; ++i) {
    if (stats.perPrimitive[i] == 0) continue;
    std::printf(" %s=%.3f",
                trace::primitiveName(static_cast<trace::Primitive>(i)),
                stats.primitiveFrac(static_cast<trace::Primitive>(i)));
  }
  std::printf("\nchaining: car %.3f, cdr %.3f; mean shape n %.1f p %.1f\n",
              stats.carChainRate(), stats.cdrChainRate(), stats.meanN(),
              stats.meanP());
}

int replayOutput(const std::string& path) {
  const trace::MappedTrace mapped = trace::MappedTrace::open(path);
  core::ReplayConfig config;
  const core::ReplayResult result = core::replayMappedTrace(config, mapped);
  std::printf("replay: %llu primitives, %llu function calls, %u residual "
              "entries (%s backend)\n",
              (unsigned long long)result.primitives,
              (unsigned long long)result.functionCalls,
              result.residualEntries, result.backend.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* familyArg = nullptr;
  const char* scaleArg = nullptr;
  const char* seedArg = nullptr;
  const char* outArg = nullptr;
  const char* formatArg = nullptr;
  bool replay = false;
  bool listKnobs = false;

  fam::FamilyConfig config;
  // First pass: find --family so the knob table exists for the second.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) return usage(stdout);
    if (std::strcmp(argv[i], "--family") == 0 && i + 1 < argc) {
      familyArg = argv[i + 1];
    }
  }
  if (familyArg == nullptr) {
    std::fputs("trace_gen: --family is required\n", stderr);
    return usage(stderr);
  }
  const auto kind = fam::familyFromName(familyArg);
  if (!kind) {
    std::fprintf(stderr, "trace_gen: unknown family '%s'\n", familyArg);
    return usage(stderr);
  }
  std::vector<fam::Knob> knobs = fam::familyKnobs(*kind, config);

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto takeValue = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_gen: %s requires a value\n", arg);
        usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--family") == 0) {
      takeValue();  // consumed in the first pass
    } else if (std::strcmp(arg, "--scale") == 0) {
      scaleArg = takeValue();
    } else if (std::strcmp(arg, "--seed") == 0) {
      seedArg = takeValue();
    } else if (std::strcmp(arg, "--out") == 0) {
      outArg = takeValue();
    } else if (std::strcmp(arg, "--format") == 0) {
      formatArg = takeValue();
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay = true;
    } else if (std::strcmp(arg, "--knobs") == 0) {
      listKnobs = true;
    } else {
      bool matched = false;
      for (const fam::Knob& knob : knobs) {
        if (std::strcmp(arg, knob.flag) != 0) continue;
        const char* text = takeValue();
        if (knob.count != nullptr) {
          if (!support::parseCount(
                  text, static_cast<std::uint64_t>(knob.min),
                  static_cast<std::uint64_t>(knob.max), knob.count)) {
            badValue(knob.flag, text);
          }
        } else {
          if (!support::parseDoubleIn(text, knob.min, knob.max,
                                      knob.real)) {
            badValue(knob.flag, text);
          }
        }
        matched = true;
        break;
      }
      if (!matched) {
        std::fprintf(stderr, "trace_gen: unrecognized argument '%s'\n",
                     arg);
        return usage(stderr);
      }
    }
  }

  if (listKnobs) {
    std::printf("%s knobs:\n", fam::familyName(*kind));
    for (const fam::Knob& knob : knobs) {
      std::printf("  %-18s %s\n", knob.flag, knob.help);
    }
    return 0;
  }

  if (scaleArg == nullptr || outArg == nullptr) {
    std::fputs("trace_gen: --scale and --out are required\n", stderr);
    return usage(stderr);
  }
  if (!support::parseCount(scaleArg, fam::kMinScale, fam::kMaxScale,
                           &config.scale)) {
    badValue("--scale", scaleArg);
  }
  if (seedArg != nullptr &&
      !support::parseCount(seedArg, 1, ~0ull, &config.seed)) {
    badValue("--seed", seedArg);
  }
  bool binary = true;
  if (formatArg != nullptr) {
    if (std::strcmp(formatArg, "text") == 0) {
      binary = false;
    } else if (std::strcmp(formatArg, "binary") != 0) {
      badValue("--format", formatArg);
    }
  }
  if (replay && !binary) {
    std::fputs("trace_gen: --replay requires --format binary\n", stderr);
    return usage(stderr);
  }

  const std::string out = outArg;
  const std::string traceName = std::string(fam::familyName(*kind)) +
                                "-s" + std::to_string(config.seed);
  try {
    const auto family = fam::makeFamily(*kind, config);
    fam::FamilyStats stats;
    if (binary) {
      trace::BinaryWriter writer(out, traceName);
      fam::BinaryWriterSink sink(writer);
      stats = family->generate(sink);
      writer.finish();
    } else {
      // Same atomic contract as the BinaryWriter / trace_convert: the
      // destination is only ever absent, its old content, or complete.
      const std::string tmp =
          out + ".tmp." +
          std::to_string(static_cast<long long>(::getpid()));
      {
        std::ofstream stream(tmp);
        if (!stream) {
          throw support::Error("trace_gen: cannot open for write: " + tmp);
        }
        try {
          fam::TextStreamSink sink(stream, traceName);
          stats = family->generate(sink);
          stream.flush();
          if (!stream) {
            throw support::Error("trace_gen: write failed: " + tmp);
          }
        } catch (...) {
          stream.close();
          std::remove(tmp.c_str());
          throw;
        }
      }
      if (std::rename(tmp.c_str(), out.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw support::Error("trace_gen: cannot rename " + tmp + " to " +
                             out);
      }
    }
    std::printf("%s: %s, scale %llu, seed %llu -> %s\n",
                fam::familyName(*kind), binary ? "binary" : "text",
                (unsigned long long)config.scale,
                (unsigned long long)config.seed, out.c_str());
    printStats(stats);
    if (replay) return replayOutput(out);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_gen: %s\n", error.what());
    return 1;
  }
  return 0;
}
