// report_lint — validate obs artifacts against the checked-in schema.
//
//   report_lint --schema tools/bench_report.schema.json
//       [--chrome-trace] FILE...
//
// Without --chrome-trace each FILE is a --metrics-out JSONL report: every
// line must parse as a JSON object, the first line must be the
// bench_report header, and each line must satisfy the schema selected by
// its "type" member. With --chrome-trace each FILE is a --trace-out
// Chrome trace-event JSON array and every event is validated against
// traceEventSchema (the ph/ts/dur/pid/tid contract Perfetto loads).
//
// The validator implements the subset of JSON Schema the checked-in file
// uses — type, const, minimum, required, properties, items — which keeps
// it dependency-free (obs/json is the only JSON code in the repo).
// Exit: 0 all files valid, 1 any violation, 2 usage/schema error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

using small::obs::JsonError;
using small::obs::JsonValue;
using small::obs::parseJson;

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Validate `value` against the JSON-Schema subset in `schema`.
/// Appends "context: message" lines to `errors`.
void validateSchema(const JsonValue& value, const JsonValue& schema,
                    const std::string& context,
                    std::vector<std::string>* errors) {
  if (const JsonValue* expected = schema.find("const")) {
    if (!value.isString() || !expected->isString() ||
        value.stringValue() != expected->stringValue()) {
      errors->push_back(context + ": expected constant " +
                        expected->dump() + ", got " + value.dump());
      return;
    }
  }
  if (const JsonValue* type = schema.find("type")) {
    const std::string& t = type->stringValue();
    const bool ok = (t == "object" && value.isObject()) ||
                    (t == "array" && value.isArray()) ||
                    (t == "string" && value.isString()) ||
                    (t == "number" && value.isNumber()) ||
                    (t == "integer" && value.isInt()) ||
                    (t == "boolean" && value.isBool());
    if (!ok) {
      errors->push_back(context + ": expected " + t + ", got " +
                        value.dump());
      return;
    }
  }
  if (const JsonValue* minimum = schema.find("minimum")) {
    if (value.isNumber() &&
        value.numberValue() < minimum->numberValue()) {
      errors->push_back(context + ": value " + value.dump() +
                        " below minimum " + minimum->dump());
    }
  }
  if (const JsonValue* required = schema.find("required")) {
    for (const JsonValue& key : required->items()) {
      if (value.isObject() && value.find(key.stringValue()) == nullptr) {
        errors->push_back(context + ": missing required member \"" +
                          key.stringValue() + "\"");
      }
    }
  }
  if (const JsonValue* properties = schema.find("properties")) {
    if (value.isObject()) {
      for (const auto& [key, memberSchema] : properties->members()) {
        if (const JsonValue* member = value.find(key)) {
          validateSchema(*member, memberSchema, context + "." + key,
                         errors);
        }
      }
    }
  }
  if (const JsonValue* items = schema.find("items")) {
    if (value.isArray()) {
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        validateSchema(value.items()[i], *items,
                       context + "[" + std::to_string(i) + "]", errors);
      }
    }
  }
}

int lintMetricsFile(const std::string& path, const JsonValue& lineSchemas) {
  std::string text;
  if (!readFile(path, &text)) {
    std::fprintf(stderr, "report_lint: cannot read %s\n", path.c_str());
    return 1;
  }
  int violations = 0;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue value;
    JsonError error;
    if (!parseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: JSON parse error: %s\n", path.c_str(),
                   lineNo, error.message.c_str());
      ++violations;
      continue;
    }
    const JsonValue* type =
        value.isObject() ? value.find("type") : nullptr;
    if (type == nullptr || !type->isString()) {
      std::fprintf(stderr, "%s:%zu: line is not an object with a "
                   "string \"type\"\n", path.c_str(), lineNo);
      ++violations;
      continue;
    }
    if (lineNo == 1) {
      if (type->stringValue() != "bench_report") {
        std::fprintf(stderr, "%s:1: first line must be the bench_report "
                     "header, got type \"%s\"\n", path.c_str(),
                     type->stringValue().c_str());
        ++violations;
      } else {
        sawHeader = true;
        const JsonValue* version = value.find("version");
        if (version != nullptr && version->isInt() &&
            version->intValue() != small::obs::kBenchReportVersion) {
          std::fprintf(stderr, "%s:1: report version %lld does not match "
                       "this tool's version %d\n", path.c_str(),
                       static_cast<long long>(version->intValue()),
                       small::obs::kBenchReportVersion);
          ++violations;
        }
      }
    } else if (type->stringValue() == "bench_report") {
      std::fprintf(stderr, "%s:%zu: duplicate bench_report header\n",
                   path.c_str(), lineNo);
      ++violations;
    }
    const JsonValue* schema = lineSchemas.find(type->stringValue());
    if (schema == nullptr) {
      std::fprintf(stderr, "%s:%zu: unknown line type \"%s\"\n",
                   path.c_str(), lineNo, type->stringValue().c_str());
      ++violations;
      continue;
    }
    std::vector<std::string> errors;
    validateSchema(value, *schema, "line", &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineNo,
                   e.c_str());
      ++violations;
    }
  }
  if (!sawHeader) {
    std::fprintf(stderr, "%s: no bench_report header line\n", path.c_str());
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}

int lintChromeTrace(const std::string& path, const JsonValue& eventSchema) {
  std::string text;
  if (!readFile(path, &text)) {
    std::fprintf(stderr, "report_lint: cannot read %s\n", path.c_str());
    return 1;
  }
  JsonValue value;
  JsonError error;
  if (!parseJson(text, &value, &error)) {
    std::fprintf(stderr, "%s:%zu:%zu: JSON parse error: %s\n",
                 path.c_str(), error.line, error.column,
                 error.message.c_str());
    return 1;
  }
  if (!value.isArray()) {
    std::fprintf(stderr, "%s: Chrome trace must be a JSON array\n",
                 path.c_str());
    return 1;
  }
  int violations = 0;
  for (std::size_t i = 0; i < value.items().size(); ++i) {
    std::vector<std::string> errors;
    validateSchema(value.items()[i], eventSchema,
                   "event[" + std::to_string(i) + "]", &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
      ++violations;
    }
  }
  return violations == 0 ? 0 : 1;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: report_lint --schema SCHEMA.json [--chrome-trace] "
               "FILE...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string schemaPath;
  bool chromeTrace = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      schemaPath = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0) {
      chromeTrace = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "report_lint: unrecognized argument '%s'\n",
                   argv[i]);
      usage(stderr);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (schemaPath.empty() || files.empty()) {
    usage(stderr);
    return 2;
  }

  std::string schemaText;
  if (!readFile(schemaPath, &schemaText)) {
    std::fprintf(stderr, "report_lint: cannot read schema %s\n",
                 schemaPath.c_str());
    return 2;
  }
  JsonValue schema;
  JsonError error;
  if (!parseJson(schemaText, &schema, &error)) {
    std::fprintf(stderr, "%s:%zu:%zu: schema parse error: %s\n",
                 schemaPath.c_str(), error.line, error.column,
                 error.message.c_str());
    return 2;
  }
  const JsonValue* lineSchemas = schema.find("lineSchemas");
  const JsonValue* eventSchema = schema.find("traceEventSchema");
  if (lineSchemas == nullptr || eventSchema == nullptr) {
    std::fprintf(stderr, "%s: missing lineSchemas/traceEventSchema\n",
                 schemaPath.c_str());
    return 2;
  }

  int rc = 0;
  for (const std::string& file : files) {
    const int fileRc = chromeTrace
                           ? lintChromeTrace(file, *eventSchema)
                           : lintMetricsFile(file, *lineSchemas);
    if (fileRc != 0) rc = 1;
  }
  if (rc == 0) {
    std::printf("report_lint: %zu file(s) OK\n", files.size());
  }
  return rc;
}
