// report_lint — validate obs artifacts against the checked-in schema.
//
//   report_lint --schema tools/bench_report.schema.json
//       [--chrome-trace | --telemetry] FILE...
//
// Without a mode flag each FILE is a --metrics-out JSONL report: every
// line must parse as a JSON object, the first line must be the
// bench_report header, and each line must satisfy the schema selected by
// its "type" member. With --chrome-trace each FILE is a --trace-out
// Chrome trace-event JSON array; each event is validated against
// traceEventSchema ("ph":"X" spans) or counterEventSchema ("ph":"C"
// counter samples), dispatched on its ph member. With --telemetry each
// FILE is a --telemetry-out snapshot file: a telemetry header line then
// one series line per timeline, validated against telemetrySchemas, with
// strictly monotone epochs and metric names drawn from the
// telemetryNamePrefixes vocabulary.
//
// The validator implements the subset of JSON Schema the checked-in file
// uses — type, const, minimum, required, properties, items — which keeps
// it dependency-free (obs/json is the only JSON code in the repo).
// Exit: 0 all files valid, 1 any content violation, 2 usage/schema error
// or (--telemetry) a file too malformed to be a telemetry document at
// all — parse failures, wrong/missing header, non-object lines.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"

namespace {

using small::obs::JsonError;
using small::obs::JsonValue;
using small::obs::parseJson;

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Validate `value` against the JSON-Schema subset in `schema`.
/// Appends "context: message" lines to `errors`.
void validateSchema(const JsonValue& value, const JsonValue& schema,
                    const std::string& context,
                    std::vector<std::string>* errors) {
  if (const JsonValue* expected = schema.find("const")) {
    if (!value.isString() || !expected->isString() ||
        value.stringValue() != expected->stringValue()) {
      errors->push_back(context + ": expected constant " +
                        expected->dump() + ", got " + value.dump());
      return;
    }
  }
  if (const JsonValue* type = schema.find("type")) {
    const std::string& t = type->stringValue();
    const bool ok = (t == "object" && value.isObject()) ||
                    (t == "array" && value.isArray()) ||
                    (t == "string" && value.isString()) ||
                    (t == "number" && value.isNumber()) ||
                    (t == "integer" && value.isInt()) ||
                    (t == "boolean" && value.isBool());
    if (!ok) {
      errors->push_back(context + ": expected " + t + ", got " +
                        value.dump());
      return;
    }
  }
  if (const JsonValue* minimum = schema.find("minimum")) {
    if (value.isNumber() &&
        value.numberValue() < minimum->numberValue()) {
      errors->push_back(context + ": value " + value.dump() +
                        " below minimum " + minimum->dump());
    }
  }
  if (const JsonValue* required = schema.find("required")) {
    for (const JsonValue& key : required->items()) {
      if (value.isObject() && value.find(key.stringValue()) == nullptr) {
        errors->push_back(context + ": missing required member \"" +
                          key.stringValue() + "\"");
      }
    }
  }
  if (const JsonValue* properties = schema.find("properties")) {
    if (value.isObject()) {
      for (const auto& [key, memberSchema] : properties->members()) {
        if (const JsonValue* member = value.find(key)) {
          validateSchema(*member, memberSchema, context + "." + key,
                         errors);
        }
      }
    }
  }
  if (const JsonValue* items = schema.find("items")) {
    if (value.isArray()) {
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        validateSchema(value.items()[i], *items,
                       context + "[" + std::to_string(i) + "]", errors);
      }
    }
  }
}

int lintMetricsFile(const std::string& path, const JsonValue& lineSchemas) {
  std::string text;
  if (!readFile(path, &text)) {
    std::fprintf(stderr, "report_lint: cannot read %s\n", path.c_str());
    return 1;
  }
  int violations = 0;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue value;
    JsonError error;
    if (!parseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: JSON parse error: %s\n", path.c_str(),
                   lineNo, error.message.c_str());
      ++violations;
      continue;
    }
    const JsonValue* type =
        value.isObject() ? value.find("type") : nullptr;
    if (type == nullptr || !type->isString()) {
      std::fprintf(stderr, "%s:%zu: line is not an object with a "
                   "string \"type\"\n", path.c_str(), lineNo);
      ++violations;
      continue;
    }
    if (lineNo == 1) {
      if (type->stringValue() != "bench_report") {
        std::fprintf(stderr, "%s:1: first line must be the bench_report "
                     "header, got type \"%s\"\n", path.c_str(),
                     type->stringValue().c_str());
        ++violations;
      } else {
        sawHeader = true;
        const JsonValue* version = value.find("version");
        if (version != nullptr && version->isInt() &&
            version->intValue() != small::obs::kBenchReportVersion) {
          std::fprintf(stderr, "%s:1: report version %lld does not match "
                       "this tool's version %d\n", path.c_str(),
                       static_cast<long long>(version->intValue()),
                       small::obs::kBenchReportVersion);
          ++violations;
        }
      }
    } else if (type->stringValue() == "bench_report") {
      std::fprintf(stderr, "%s:%zu: duplicate bench_report header\n",
                   path.c_str(), lineNo);
      ++violations;
    }
    const JsonValue* schema = lineSchemas.find(type->stringValue());
    if (schema == nullptr) {
      std::fprintf(stderr, "%s:%zu: unknown line type \"%s\"\n",
                   path.c_str(), lineNo, type->stringValue().c_str());
      ++violations;
      continue;
    }
    std::vector<std::string> errors;
    validateSchema(value, *schema, "line", &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineNo,
                   e.c_str());
      ++violations;
    }
  }
  if (!sawHeader) {
    std::fprintf(stderr, "%s: no bench_report header line\n", path.c_str());
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}

int lintChromeTrace(const std::string& path, const JsonValue& spanSchema,
                    const JsonValue* counterSchema) {
  std::string text;
  if (!readFile(path, &text)) {
    std::fprintf(stderr, "report_lint: cannot read %s\n", path.c_str());
    return 1;
  }
  JsonValue value;
  JsonError error;
  if (!parseJson(text, &value, &error)) {
    std::fprintf(stderr, "%s:%zu:%zu: JSON parse error: %s\n",
                 path.c_str(), error.line, error.column,
                 error.message.c_str());
    return 1;
  }
  if (!value.isArray()) {
    std::fprintf(stderr, "%s: Chrome trace must be a JSON array\n",
                 path.c_str());
    return 1;
  }
  int violations = 0;
  for (std::size_t i = 0; i < value.items().size(); ++i) {
    const JsonValue& event = value.items()[i];
    // Dispatch on ph: "C" counter samples (telemetry tracks) have no
    // dur/tid; everything else must be a complete "X" span.
    const JsonValue* ph =
        event.isObject() ? event.find("ph") : nullptr;
    const bool isCounter = counterSchema != nullptr && ph != nullptr &&
                           ph->isString() && ph->stringValue() == "C";
    std::vector<std::string> errors;
    validateSchema(event, isCounter ? *counterSchema : spanSchema,
                   "event[" + std::to_string(i) + "]", &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
      ++violations;
    }
  }
  return violations == 0 ? 0 : 1;
}

/// Does `name` start with one of the schema's telemetryNamePrefixes?
bool knownTelemetryName(const std::string& name, const JsonValue& prefixes) {
  for (const JsonValue& prefix : prefixes.items()) {
    if (!prefix.isString()) continue;
    const std::string& p = prefix.stringValue();
    if (name.size() > p.size() && name.compare(0, p.size(), p) == 0) {
      return true;
    }
  }
  return false;
}

// Telemetry files carry the deterministic snapshot plane that CI
// byte-diffs across --jobs/--sessions, so damage is graded: a file that
// is not a telemetry document at all (unparseable lines, missing or
// foreign header) exits 2, while well-formed lines that break the
// content contract — non-monotone epochs, names outside the
// telemetryNamePrefixes vocabulary, a header series count that disagrees
// with the body — exit 1 like every other lint violation.
int lintTelemetryFile(const std::string& path, const JsonValue& schemas,
                      const JsonValue& prefixes) {
  const JsonValue* headerSchema = schemas.find("telemetry");
  const JsonValue* seriesSchema = schemas.find("series");
  if (headerSchema == nullptr || seriesSchema == nullptr) {
    std::fprintf(stderr,
                 "report_lint: telemetrySchemas must define both "
                 "\"telemetry\" and \"series\"\n");
    return 2;
  }
  std::string text;
  if (!readFile(path, &text)) {
    std::fprintf(stderr, "report_lint: cannot read %s\n", path.c_str());
    return 2;
  }
  int structural = 0;
  int violations = 0;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  std::int64_t declaredSeries = -1;
  std::size_t seriesSeen = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue value;
    JsonError error;
    if (!parseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: JSON parse error: %s\n", path.c_str(),
                   lineNo, error.message.c_str());
      ++structural;
      continue;
    }
    const JsonValue* type =
        value.isObject() ? value.find("type") : nullptr;
    if (type == nullptr || !type->isString()) {
      std::fprintf(stderr,
                   "%s:%zu: line is not an object with a string "
                   "\"type\"\n", path.c_str(), lineNo);
      ++structural;
      continue;
    }
    if (!sawHeader) {
      if (type->stringValue() != "telemetry") {
        std::fprintf(stderr,
                     "%s:%zu: first line must be the telemetry header, "
                     "got type \"%s\"\n", path.c_str(), lineNo,
                     type->stringValue().c_str());
        ++structural;
        continue;
      }
      sawHeader = true;
      std::vector<std::string> errors;
      validateSchema(value, *headerSchema, "line", &errors);
      for (const std::string& e : errors) {
        std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineNo,
                     e.c_str());
        ++structural;
      }
      const JsonValue* version = value.find("version");
      if (version != nullptr && version->isInt() &&
          version->intValue() != small::obs::kTelemetryVersion) {
        std::fprintf(stderr,
                     "%s:%zu: telemetry version %lld does not match this "
                     "tool's version %d\n", path.c_str(), lineNo,
                     static_cast<long long>(version->intValue()),
                     small::obs::kTelemetryVersion);
        ++structural;
      }
      const JsonValue* count = value.find("series");
      if (count != nullptr && count->isInt()) {
        declaredSeries = count->intValue();
      }
      continue;
    }
    if (type->stringValue() != "series") {
      std::fprintf(stderr, "%s:%zu: unknown line type \"%s\"\n",
                   path.c_str(), lineNo, type->stringValue().c_str());
      ++structural;
      continue;
    }
    ++seriesSeen;
    std::vector<std::string> errors;
    validateSchema(value, *seriesSchema, "line", &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineNo,
                   e.c_str());
      ++violations;
    }
    const JsonValue* name = value.find("name");
    if (name != nullptr && name->isString() &&
        !knownTelemetryName(name->stringValue(), prefixes)) {
      std::fprintf(stderr,
                   "%s:%zu: metric name \"%s\" outside the known "
                   "telemetry vocabulary\n", path.c_str(), lineNo,
                   name->stringValue().c_str());
      ++violations;
    }
    const JsonValue* samples = value.find("samples");
    if (samples != nullptr && samples->isArray()) {
      bool haveLast = false;
      std::uint64_t lastEpoch = 0;
      for (std::size_t i = 0; i < samples->items().size(); ++i) {
        const JsonValue& pair = samples->items()[i];
        if (!pair.isArray() || pair.items().size() != 2 ||
            !pair.items()[0].isInt() || !pair.items()[1].isNumber()) {
          std::fprintf(stderr,
                       "%s:%zu: sample[%zu] is not an [epoch, value] "
                       "pair\n", path.c_str(), lineNo, i);
          ++violations;
          continue;
        }
        const std::uint64_t epoch =
            static_cast<std::uint64_t>(pair.items()[0].intValue());
        if (haveLast && epoch <= lastEpoch) {
          std::fprintf(stderr,
                       "%s:%zu: sample[%zu] epoch %llu not strictly "
                       "greater than %llu\n", path.c_str(), lineNo, i,
                       static_cast<unsigned long long>(epoch),
                       static_cast<unsigned long long>(lastEpoch));
          ++violations;
        }
        haveLast = true;
        lastEpoch = epoch;
      }
    }
  }
  if (!sawHeader) {
    std::fprintf(stderr, "%s: no telemetry header line\n", path.c_str());
    ++structural;
  } else if (declaredSeries >= 0 &&
             static_cast<std::size_t>(declaredSeries) != seriesSeen) {
    std::fprintf(stderr,
                 "%s: header declares %lld series but file has %zu\n",
                 path.c_str(), static_cast<long long>(declaredSeries),
                 seriesSeen);
    ++violations;
  }
  if (structural != 0) return 2;
  return violations == 0 ? 0 : 1;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: report_lint --schema SCHEMA.json "
               "[--chrome-trace | --telemetry] FILE...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string schemaPath;
  bool chromeTrace = false;
  bool telemetry = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      schemaPath = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0) {
      chromeTrace = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "report_lint: unrecognized argument '%s'\n",
                   argv[i]);
      usage(stderr);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (schemaPath.empty() || files.empty() || (chromeTrace && telemetry)) {
    usage(stderr);
    return 2;
  }

  std::string schemaText;
  if (!readFile(schemaPath, &schemaText)) {
    std::fprintf(stderr, "report_lint: cannot read schema %s\n",
                 schemaPath.c_str());
    return 2;
  }
  JsonValue schema;
  JsonError error;
  if (!parseJson(schemaText, &schema, &error)) {
    std::fprintf(stderr, "%s:%zu:%zu: schema parse error: %s\n",
                 schemaPath.c_str(), error.line, error.column,
                 error.message.c_str());
    return 2;
  }
  const JsonValue* lineSchemas = schema.find("lineSchemas");
  const JsonValue* eventSchema = schema.find("traceEventSchema");
  if (lineSchemas == nullptr || eventSchema == nullptr) {
    std::fprintf(stderr, "%s: missing lineSchemas/traceEventSchema\n",
                 schemaPath.c_str());
    return 2;
  }
  const JsonValue* counterSchema = schema.find("counterEventSchema");
  const JsonValue* telemetrySchemas = schema.find("telemetrySchemas");
  const JsonValue* namePrefixes = schema.find("telemetryNamePrefixes");
  if (telemetry &&
      (telemetrySchemas == nullptr || namePrefixes == nullptr ||
       !namePrefixes->isArray())) {
    std::fprintf(stderr,
                 "%s: missing telemetrySchemas/telemetryNamePrefixes\n",
                 schemaPath.c_str());
    return 2;
  }

  int rc = 0;
  for (const std::string& file : files) {
    int fileRc;
    if (telemetry) {
      fileRc = lintTelemetryFile(file, *telemetrySchemas, *namePrefixes);
    } else if (chromeTrace) {
      fileRc = lintChromeTrace(file, *eventSchema, counterSchema);
    } else {
      fileRc = lintMetricsFile(file, *lineSchemas);
    }
    if (fileRc > rc) rc = fileRc;
  }
  if (rc == 0) {
    std::printf("report_lint: %zu file(s) OK\n", files.size());
  }
  return rc;
}
