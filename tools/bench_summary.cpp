// bench_summary — fold a set of bench_report JSONL files into one
// trajectory entry:
//
//   bench_summary --date 2026-08-06 [--out-dir DIR | --out FILE]
//       PATH...
//
// Each PATH is a report file or a directory scanned (sorted) for
// *.jsonl / *.metrics.json files. The output, written to
// DIR/BENCH_<date>.json (or --out FILE verbatim), is one JSON document:
//
//   {"type":"bench_summary","version":1,"date":"...",
//    "benches":{"<bench>":{"config":{...},"figures":{...}}}}
//
// Bench names and figure names are emitted sorted, so the summary is a
// deterministic function of the input reports — successive BENCH_<date>
// files diff cleanly against each other.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

namespace fs = std::filesystem;
using small::obs::JsonError;
using small::obs::JsonValue;
using small::obs::parseJson;

struct BenchEntry {
  JsonValue config = JsonValue::makeObject();
  std::map<std::string, JsonValue> figures;
};

bool looksLikeReport(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.size() >= 6 &&
         (name.ends_with(".jsonl") || name.ends_with(".metrics.json"));
}

bool mergeReportFile(const std::string& path,
                     std::map<std::string, BenchEntry>* benches) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_summary: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream lines(buffer.str());
  std::string line;
  std::size_t lineNo = 0;
  std::string bench;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue value;
    JsonError error;
    if (!parseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: JSON parse error: %s\n", path.c_str(),
                   lineNo, error.message.c_str());
      return false;
    }
    const JsonValue* type = value.isObject() ? value.find("type") : nullptr;
    if (type == nullptr || !type->isString()) continue;
    if (type->stringValue() == "bench_report") {
      const JsonValue* name = value.find("bench");
      if (name == nullptr || !name->isString()) {
        std::fprintf(stderr, "%s:%zu: bench_report without a bench name\n",
                     path.c_str(), lineNo);
        return false;
      }
      bench = name->stringValue();
      if (const JsonValue* config = value.find("config")) {
        (*benches)[bench].config = *config;
      }
    } else if (type->stringValue() == "figure") {
      if (bench.empty()) {
        std::fprintf(stderr, "%s:%zu: figure before bench_report header\n",
                     path.c_str(), lineNo);
        return false;
      }
      const JsonValue* name = value.find("name");
      const JsonValue* figureValue = value.find("value");
      if (name != nullptr && name->isString() && figureValue != nullptr) {
        (*benches)[bench].figures[name->stringValue()] = *figureValue;
      }
    }
  }
  return true;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bench_summary --date DATE [--out-dir DIR | "
               "--out FILE] PATH...\n"
               "       PATH: bench_report JSONL file, or directory "
               "scanned for *.jsonl\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string date;
  std::string outDir;
  std::string outFile;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--date") == 0 && i + 1 < argc) {
      date = argv[++i];
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      outDir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outFile = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "bench_summary: unrecognized argument '%s'\n",
                   argv[i]);
      usage(stderr);
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() || (date.empty() && outFile.empty())) {
    usage(stderr);
    return 2;
  }
  if (outFile.empty()) {
    const fs::path dir = outDir.empty() ? fs::path(".") : fs::path(outDir);
    outFile = (dir / ("BENCH_" + date + ".json")).string();
  }

  // Expand directories into their sorted report files.
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(path, ec)) {
        if (entry.is_regular_file() && looksLikeReport(entry.path())) {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(path);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "bench_summary: no report files found\n");
    return 1;
  }

  std::map<std::string, BenchEntry> benches;
  for (const std::string& file : files) {
    if (!mergeReportFile(file, &benches)) return 1;
  }

  JsonValue summary = JsonValue::makeObject();
  summary.set("type", JsonValue::makeString("bench_summary"));
  summary.set("version",
              JsonValue::makeInt(small::obs::kBenchReportVersion));
  if (!date.empty()) summary.set("date", JsonValue::makeString(date));
  JsonValue benchesJson = JsonValue::makeObject();
  for (const auto& [name, entry] : benches) {
    JsonValue benchJson = JsonValue::makeObject();
    benchJson.set("config", entry.config);
    JsonValue figures = JsonValue::makeObject();
    for (const auto& [figureName, figureValue] : entry.figures) {
      figures.set(figureName, figureValue);
    }
    benchJson.set("figures", figures);
    benchesJson.set(name, benchJson);
  }
  summary.set("benches", benchesJson);

  std::ofstream out(outFile, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_summary: cannot write %s\n",
                 outFile.c_str());
    return 1;
  }
  out << summary.dump() << '\n';
  if (!out.flush()) {
    std::fprintf(stderr, "bench_summary: write failed for %s\n",
                 outFile.c_str());
    return 1;
  }
  std::printf("bench_summary: %zu report(s), %zu bench(es) -> %s\n",
              files.size(), benches.size(), outFile.c_str());
  return 0;
}
