// trace_convert — convert traces between the text and SMTR binary
// formats, and report header/record-count statistics.
//
//   trace_convert IN OUT [--to text|binary]   convert IN into OUT
//   trace_convert --stats IN                  print stats, convert nothing
//
// The input format is sniffed from the file's first bytes (SMTR magic =>
// binary). Without --to, the output format is the opposite of the input,
// so `trace_convert a.txt a.smtr && trace_convert a.smtr b.txt` round-
// trips — and `cmp a.txt b.txt` proves the formats are lossless mirrors
// (CI does exactly that). Stats for a binary input come from the mmap'd
// header plus one streaming decode pass: the trace is never materialized,
// so --stats works on traces far larger than memory.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#else
#include <process.h>
#define getpid _getpid
#endif

#include "support/error.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace {

using namespace small;

int usage() {
  std::fputs(
      "usage:\n"
      "  trace_convert IN OUT [--to text|binary]\n"
      "  trace_convert --stats IN\n"
      "The input format is sniffed (SMTR magic => binary); without --to\n"
      "the output format is the opposite of the input's.\n",
      stderr);
  return 2;
}

void printContent(const trace::TraceContent& content) {
  std::printf("records: %llu primitives, %llu function calls, "
              "max depth %u\n",
              (unsigned long long)content.primitiveCalls,
              (unsigned long long)content.functionCalls,
              content.maxCallDepth);
  if (!content.balanced()) {
    std::printf("WARNING: %llu unbalanced function exits (truncated or "
                "corrupted stream)\n",
                (unsigned long long)content.unbalancedExits);
  }
}

/// Header + record stats for a binary trace via one streaming decode —
/// the whole point of the format is that this never builds a Trace.
int statsBinary(const std::string& path) {
  const trace::MappedTrace mapped = trace::MappedTrace::open(path);
  std::printf("format: binary (SMTR v%u), %zu bytes (%zu header, %zu "
              "records)\n",
              mapped.version(), mapped.fileBytes(),
              mapped.fileBytes() - mapped.recordBytes(),
              mapped.recordBytes());
  std::printf("name: %s\n", mapped.traceName().c_str());
  std::printf("functions interned: %zu\n", mapped.functionCount());
  std::printf("declared records: %llu\n",
              (unsigned long long)mapped.recordCount());
  trace::TraceContent content{};
  std::uint32_t depth = 0;
  trace::BinaryDecoder decoder(mapped);
  std::vector<trace::Event> batch(1024);
  for (std::size_t k = decoder.decodeBatch(batch); k != 0;
       k = decoder.decodeBatch(batch)) {
    for (std::size_t i = 0; i < k; ++i) {
      switch (batch[i].kind) {
        case trace::EventKind::kPrimitive:
          ++content.primitiveCalls;
          break;
        case trace::EventKind::kFunctionEnter:
          ++content.functionCalls;
          ++depth;
          content.maxCallDepth = std::max(content.maxCallDepth, depth);
          break;
        case trace::EventKind::kFunctionExit:
          if (depth > 0) {
            --depth;
          } else {
            ++content.unbalancedExits;
          }
          break;
      }
    }
  }
  printContent(content);
  return 0;
}

int statsText(const std::string& path) {
  const trace::Trace raw = trace::loadFile(path);
  std::printf("format: text\n");
  std::printf("name: %s\n", raw.name.c_str());
  std::printf("functions interned: %zu\n", raw.functionCount());
  std::printf("records: %zu\n", raw.events().size());
  printContent(raw.content());
  return 0;
}

int stats(const std::string& path) {
  return trace::sniffFileFormat(path) == trace::FileFormat::kBinary
             ? statsBinary(path)
             : statsText(path);
}

int convert(const std::string& inPath, const std::string& outPath,
            const char* toArg) {
  const trace::FileFormat inFormat = trace::sniffFileFormat(inPath);
  trace::FileFormat outFormat = inFormat == trace::FileFormat::kText
                                    ? trace::FileFormat::kBinary
                                    : trace::FileFormat::kText;
  if (toArg != nullptr) {
    if (std::strcmp(toArg, "text") == 0) {
      outFormat = trace::FileFormat::kText;
    } else if (std::strcmp(toArg, "binary") == 0) {
      outFormat = trace::FileFormat::kBinary;
    } else {
      return usage();
    }
  }
  const trace::Trace raw = trace::loadFile(inPath);
  // Write to a sibling temp file and rename into place only once the
  // whole trace is on disk: a failure mid-write (full disk, crash in the
  // encoder) must never leave a truncated OUT behind masquerading as a
  // valid trace. rename(2) within a directory is atomic, so OUT is
  // always either absent, its old content, or the complete conversion.
  const std::string tmpPath =
      outPath + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  try {
    trace::saveFile(raw, tmpPath, outFormat);
  } catch (...) {
    std::remove(tmpPath.c_str());
    throw;
  }
  if (std::rename(tmpPath.c_str(), outPath.c_str()) != 0) {
    const int err = errno;
    std::remove(tmpPath.c_str());
    throw support::Error("trace_convert: cannot rename " + tmpPath +
                         " to " + outPath + ": " + std::strerror(err));
  }
  const trace::TraceContent content = raw.content();
  std::printf("%s (%s) -> %s (%s): %zu events, %zu functions\n",
              inPath.c_str(), trace::fileFormatName(inFormat),
              outPath.c_str(), trace::fileFormatName(outFormat),
              raw.events().size(), raw.functionCount());
  printContent(content);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 3 && std::strcmp(argv[1], "--stats") == 0) {
      return stats(argv[2]);
    }
    if (argc == 3) {
      return convert(argv[1], argv[2], nullptr);
    }
    if (argc == 5 && std::strcmp(argv[3], "--to") == 0) {
      return convert(argv[1], argv[2], argv[4]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_convert: %s\n", error.what());
    return 1;
  }
  return usage();
}
