// telemetry_report — terminal triage for --telemetry-out files.
//
//   telemetry_report FILE...
//
// Folds each telemetry snapshot file into one row per series: sample
// count, min/mean/max/p99 of the sampled values, and an ASCII sparkline
// of the timeline in epoch order, downsampled to a fixed width. Reads
// the same versioned JSONL the benches emit and report_lint --telemetry
// validates; a version this tool does not understand is refused rather
// than silently misread.
//
// Exit: 0 all files folded, 1 any file unreadable or malformed, 2 usage.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/timeseries.hpp"
#include "support/table.hpp"

namespace {

using small::obs::JsonError;
using small::obs::JsonValue;
using small::obs::parseJson;

// Sparkline width and its ASCII intensity ramp (lowest..highest value).
constexpr std::size_t kSparkWidth = 40;
constexpr const char kSparkRamp[] = " .:-=+*#%";

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// "550" for integral values, one decimal otherwise — matches how the
/// series mix integral counter readings with derived rates.
std::string formatValue(double v) {
  const auto asInt = static_cast<long long>(v);
  if (static_cast<double>(asInt) == v && std::fabs(v) < 9.0e15) {
    return std::to_string(asInt);
  }
  return small::support::formatDouble(v, 1);
}

/// Nearest-rank quantile over a sorted copy (the support::Histogram
/// convention: smallest value with >= q of the mass at or below it).
double quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : std::min(rank - 1, n - 1)];
}

/// Downsample `values` (epoch order) to kSparkWidth bins, each drawn as
/// the ramp character for its bin mean scaled into the series' range.
std::string sparkline(const std::vector<double>& values) {
  const std::size_t n = values.size();
  const std::size_t width = std::min(kSparkWidth, n);
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  constexpr std::size_t kLevels = sizeof(kSparkRamp) - 2;  // NUL + base
  std::string out;
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t begin = b * n / width;
    const std::size_t end = std::max(begin + 1, (b + 1) * n / width);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    const double mean = sum / static_cast<double>(end - begin);
    const std::size_t level =
        hi == lo ? kLevels / 2
                 : static_cast<std::size_t>(
                       std::lround((mean - lo) / (hi - lo) *
                                   static_cast<double>(kLevels)));
    out.push_back(kSparkRamp[std::min(level, kLevels)]);
  }
  return out;
}

int foldFile(const std::string& path) {
  std::string text;
  if (!readFile(path, &text)) {
    std::fprintf(stderr, "telemetry_report: cannot read %s\n",
                 path.c_str());
    return 1;
  }
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  std::string bench;
  small::support::TextTable table(
      {"Series", "Source", "N", "Min", "Mean", "Max", "p99", "Timeline"});
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue value;
    JsonError error;
    if (!parseJson(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: JSON parse error: %s\n", path.c_str(),
                   lineNo, error.message.c_str());
      return 1;
    }
    const JsonValue* type =
        value.isObject() ? value.find("type") : nullptr;
    if (type == nullptr || !type->isString()) {
      std::fprintf(stderr,
                   "%s:%zu: line is not an object with a string "
                   "\"type\"\n", path.c_str(), lineNo);
      return 1;
    }
    if (!sawHeader) {
      if (type->stringValue() != "telemetry") {
        std::fprintf(stderr,
                     "%s:%zu: first line must be the telemetry header\n",
                     path.c_str(), lineNo);
        return 1;
      }
      const JsonValue* version = value.find("version");
      if (version == nullptr || !version->isInt() ||
          version->intValue() != small::obs::kTelemetryVersion) {
        std::fprintf(stderr,
                     "%s:%zu: unsupported telemetry version (this tool "
                     "reads version %d)\n", path.c_str(), lineNo,
                     small::obs::kTelemetryVersion);
        return 1;
      }
      if (const JsonValue* b = value.find("bench")) {
        if (b->isString()) bench = b->stringValue();
      }
      sawHeader = true;
      continue;
    }
    if (type->stringValue() != "series") {
      std::fprintf(stderr, "%s:%zu: unknown line type \"%s\"\n",
                   path.c_str(), lineNo, type->stringValue().c_str());
      return 1;
    }
    const JsonValue* name = value.find("name");
    const JsonValue* source = value.find("source");
    const JsonValue* samples = value.find("samples");
    if (name == nullptr || !name->isString() || source == nullptr ||
        !source->isString() || samples == nullptr || !samples->isArray()) {
      std::fprintf(stderr, "%s:%zu: malformed series line\n", path.c_str(),
                   lineNo);
      return 1;
    }
    std::vector<double> values;
    values.reserve(samples->items().size());
    for (const JsonValue& pair : samples->items()) {
      if (!pair.isArray() || pair.items().size() != 2 ||
          !pair.items()[1].isNumber()) {
        std::fprintf(stderr,
                     "%s:%zu: sample is not an [epoch, value] pair\n",
                     path.c_str(), lineNo);
        return 1;
      }
      values.push_back(pair.items()[1].numberValue());
    }
    if (values.empty()) {
      table.addRow({name->stringValue(), source->stringValue(), "0", "-",
                    "-", "-", "-", ""});
      continue;
    }
    double sum = 0.0;
    for (double v : values) sum += v;
    table.addRow(
        {name->stringValue(), source->stringValue(),
         std::to_string(values.size()),
         formatValue(*std::min_element(values.begin(), values.end())),
         small::support::formatDouble(
             sum / static_cast<double>(values.size()), 1),
         formatValue(*std::max_element(values.begin(), values.end())),
         formatValue(quantile(values, 0.99)), sparkline(values)});
  }
  if (!sawHeader) {
    std::fprintf(stderr, "%s: no telemetry header line\n", path.c_str());
    return 1;
  }
  std::printf("%s — bench %s, %zu series (timeline: '%c' low .. '%c' "
              "high, %zu-wide)\n",
              path.c_str(), bench.empty() ? "?" : bench.c_str(),
              table.rowCount(), kSparkRamp[0],
              kSparkRamp[sizeof(kSparkRamp) - 2], kSparkWidth);
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: telemetry_report FILE...\n");
      return 0;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "telemetry_report: unrecognized argument "
                   "'%s'\n", argv[i]);
      return 2;
    }
    files.push_back(argv[i]);
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: telemetry_report FILE...\n");
    return 2;
  }
  int rc = 0;
  bool first = true;
  for (const std::string& file : files) {
    if (!first) std::printf("\n");
    first = false;
    if (foldFile(file) != 0) rc = 1;
  }
  return rc;
}
